"""The live monitor: one object that tails, grades, and renders.

:class:`LiveMonitor` composes the streaming pieces — a
:class:`~repro.telemetry.live.tail.JournalFollower` over on-disk
journals and/or the in-process event bus
(:func:`repro.telemetry.events.subscribe`) — with the analysis pieces
(:class:`~repro.telemetry.live.liveness.LivenessTracker`,
:class:`~repro.telemetry.live.slo.SloEngine`) and renders the result
three ways:

* :meth:`report` — a graded :class:`~repro.telemetry.health.HealthReport`
  whose findings mix liveness, SLO, and ingest problems (same type the
  post-hoc engine produces, same exit-code convention);
* :meth:`snapshot` — the JSON blob the ``/slo`` endpoint serves;
* :meth:`prometheus` — a text exposition page combining the process's
  metric registry with live per-rank families, format-validated by
  :func:`repro.telemetry.export.validate_prometheus_text` in the tests.

Every surface calls :meth:`poll` first (refresh-on-read), so a scrape is
never staler than the journal it follows.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Union

from .. import events as events_mod
from ..export import (
    PromFamily,
    registry_families,
    render_prometheus,
)
from ..health import CRITICAL, WARN, Finding, HealthReport
from .liveness import STATE_RANK, LivenessTracker, LivenessVerdict
from .slo import SloConfig, SloEngine
from .tail import JournalFollower, PathLike

#: Rules the live monitor can produce, in addition to whatever names the
#: liveness tracker and SLO engine emit.
INGEST_RULE = "journal_ingest"


class LiveMonitor:
    """Follow a run in flight and grade it continuously.

    Parameters
    ----------
    path:
        Journal file or directory to tail (``None`` = no disk source).
    bus:
        Subscribe to the in-process event bus so records emitted in this
        process reach the monitor with no disk round-trip.  Remember to
        :meth:`close` (or use the monitor as a context manager) to
        unsubscribe.
    tracker / slo:
        Pre-configured analysis engines; fresh defaults otherwise.
    """

    def __init__(
        self,
        path: Optional[PathLike] = None,
        bus: bool = False,
        tracker: Optional[LivenessTracker] = None,
        slo: Optional[Union[SloEngine, SloConfig]] = None,
    ) -> None:
        self.follower = JournalFollower(path) if path is not None else None
        self.tracker = tracker if tracker is not None else LivenessTracker()
        if isinstance(slo, SloConfig):
            slo = SloEngine(slo)
        self.slo = slo if slo is not None else SloEngine()
        self._lock = threading.Lock()
        self._bus_queue: Deque[Dict[str, Any]] = deque()
        self._subscription = None
        if bus:
            self._subscription = events_mod.subscribe(self._bus_queue.append)
        self.records_seen = 0
        #: Latest record-scope attribution summary per record name.
        self._attr_records: Dict[str, Dict[str, Any]] = {}
        #: Latest census row per record name (scope ``census_record``).
        self._attr_census_rows: Dict[str, Dict[str, Any]] = {}
        #: Latest fleet-wide census summary (scope ``census``).
        self._attr_census: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "LiveMonitor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._subscription is not None:
            events_mod.unsubscribe(self._subscription)
            self._subscription = None

    # ------------------------------------------------------------------
    def poll(self) -> int:
        """Ingest everything new (disk + bus); returns records consumed."""
        with self._lock:
            batch: List[Dict[str, Any]] = []
            if self.follower is not None:
                batch.extend(self.follower.poll())
            while self._bus_queue:
                batch.append(self._bus_queue.popleft())
            for record in batch:
                self.tracker.observe(record)
                self.slo.observe(record)
                if record.get("type") == events_mod.ATTRIBUTION_SUMMARY:
                    self._observe_attribution(record)
            self.records_seen += len(batch)
            return len(batch)

    def _observe_attribution(self, record: Dict[str, Any]) -> None:
        scope = record.get("scope")
        if scope == "record":
            self._attr_records[str(record.get("record", "?"))] = record
        elif scope == "census_record":
            self._attr_census_rows[str(record.get("record", "?"))] = record
        elif scope == "census":
            self._attr_census = record

    # ------------------------------------------------------------------
    def _ingest_findings(self) -> List[Finding]:
        findings: List[Finding] = []
        follower = self.follower
        if follower is not None and follower.mixed_runs:
            findings.append(
                Finding(
                    rule=INGEST_RULE,
                    severity=CRITICAL,
                    message=(
                        f"followed journals span {len(follower.run_ids)} "
                        f"different runs: {sorted(follower.run_ids)}"
                    ),
                )
            )
        if follower is not None and follower.skipped_lines:
            findings.append(
                Finding(
                    rule=INGEST_RULE,
                    severity=WARN,
                    message=(
                        f"{follower.skipped_lines} damaged journal line(s) "
                        f"skipped while tailing"
                    ),
                    evidence=[{"problems": follower.problems[:8]}],
                )
            )
        if events_mod.subscriber_errors:
            findings.append(
                Finding(
                    rule=INGEST_RULE,
                    severity=WARN,
                    message=(
                        f"{events_mod.subscriber_errors} event-bus "
                        f"subscriber error(s) swallowed"
                    ),
                )
            )
        return findings

    def report(self, refresh: bool = True) -> HealthReport:
        """Graded live findings (liveness + SLO + ingest), worst first."""
        if refresh:
            self.poll()
        findings = (
            self.tracker.findings()
            + self.slo.findings()
            + self._ingest_findings()
        )
        from ..health import severity_rank

        findings.sort(key=lambda f: -severity_rank(f.severity))
        return HealthReport(
            findings=findings,
            rules_run=["liveness", "straggler", "slo", INGEST_RULE],
        )

    # ------------------------------------------------------------------
    def verdicts(self) -> Dict[Any, LivenessVerdict]:
        return self.tracker.verdicts()

    def snapshot(self, refresh: bool = True) -> Dict[str, Any]:
        """The ``/slo`` JSON payload: status, per-rank table, SLI window."""
        if refresh:
            self.poll()
        report = self.report(refresh=False)
        verdicts = self.verdicts()
        return {
            "status": report.status,
            "records_seen": self.records_seen,
            "now": self.tracker.now(),
            "ranks": [v.as_dict() for v in verdicts.values()],
            "slo": self.slo.summary(),
            "findings": [f.as_dict() for f in report.findings],
        }

    def rank_table(self, refresh: bool = True) -> str:
        """Fixed-width per-rank liveness/latency table (watch mode)."""
        if refresh:
            self.poll()
        verdicts = self.verdicts()
        slo = self.slo.summary()
        lines = [
            f"{'rank':<14s} {'state':<8s} {'beats':>5s} {'ckpts':>5s} "
            f"{'last beat':>12s} {'misses':>6s}  reason"
        ]
        for verdict in verdicts.values():
            where = verdict.node
            if verdict.rank is not None:
                where += f"/r{verdict.rank}"
            last = (
                "-"
                if verdict.last_heartbeat is None
                else f"t={verdict.last_heartbeat:.4g}"
            )
            state = verdict.state + ("*" if verdict.straggler else "")
            lines.append(
                f"{where:<14s} {state:<8s} {verdict.heartbeats:>5d} "
                f"{verdict.checkpoints:>5d} {last:>12s} "
                f"{verdict.misses:>6d}  {verdict.reason}"
            )
        commit = slo["commit_latency"]
        flush = slo["flush_latency"]

        def _fmt(value: Optional[float]) -> str:
            return "-" if value is None else f"{value:.3g}s"

        lines.append(
            f"window[{slo['window']}]: commit p50={_fmt(commit['p50'])} "
            f"p99={_fmt(commit['p99'])}  flush p50={_fmt(flush['p50'])} "
            f"p99={_fmt(flush['p99'])}  backlog={slo['backlog_depth']} "
            f"burn={slo['burn_rate']:.2f}"
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def prometheus(self, refresh: bool = True) -> str:
        """Exposition page: registry instruments + live monitor families."""
        if refresh:
            self.poll()
        verdicts = self.verdicts()
        slo = self.slo.summary()

        state_family = PromFamily(
            "repro_live_rank_state",
            "gauge",
            "Liveness state per rank (0 ok, 1 lagging, 2 hung)",
        )
        beat_family = PromFamily(
            "repro_live_last_heartbeat_sim_seconds",
            "gauge",
            "Simulated time of each rank's latest heartbeat",
        )
        beats_family = PromFamily(
            "repro_live_heartbeats_total",
            "counter",
            "Heartbeats observed per rank",
        )
        for verdict in verdicts.values():
            labels = {
                "node": verdict.node,
                "rank": "" if verdict.rank is None else str(verdict.rank),
            }
            state_family.add("", labels, STATE_RANK[verdict.state])
            if verdict.last_heartbeat is not None:
                beat_family.add("", labels, verdict.last_heartbeat)
            beats_family.add("", labels, verdict.heartbeats)

        quantile_family = PromFamily(
            "repro_live_latency_sim_seconds",
            "gauge",
            "Rolling-window checkpoint latency quantiles (simulated)",
        )
        for phase in ("commit_latency", "flush_latency"):
            stats = slo[phase]
            for q in ("p50", "p99"):
                if stats[q] is not None:
                    quantile_family.add(
                        "",
                        {"phase": phase, "quantile": q},
                        stats[q],
                    )

        scalar_families = [
            PromFamily(
                "repro_live_backlog_depth",
                "gauge",
                "Checkpoints produced but not yet durable",
            ).add("", None, slo["backlog_depth"]),
            PromFamily(
                "repro_live_error_budget_burn",
                "gauge",
                "Error-budget burn rate over the window",
            ).add("", None, slo["burn_rate"]),
            PromFamily(
                "repro_live_records_ingested_total",
                "counter",
                "Journal records consumed by the live monitor",
            ).add("", None, self.records_seen),
            PromFamily(
                "repro_live_status",
                "gauge",
                "Worst live grade (0 ok, 1 warn, 2 critical)",
            ).add("", None, self.report(refresh=False).exit_code),
        ]
        if slo["dedup_ewma"] is not None:
            scalar_families.append(
                PromFamily(
                    "repro_live_dedup_ratio_ewma",
                    "gauge",
                    "EWMA of per-commit dedup ratios",
                ).add("", None, slo["dedup_ewma"])
            )
        attr_class = PromFamily(
            "repro_attr_class_bytes",
            "gauge",
            "Attributed logical bytes per record and byte class",
        )
        attr_depth = PromFamily(
            "repro_attr_lineage_depth_max",
            "gauge",
            "Deepest restore-gather hop distance per record",
        )
        attr_sharing = PromFamily(
            "repro_attr_sharing_factor",
            "gauge",
            "Logical chunk references per unique payload cell",
        )
        for name, row in self._attr_records.items():
            for cls in ("first", "shift", "fixed", "zero", "metadata"):
                value = row.get(f"{cls}_bytes")
                if value is not None:
                    attr_class.add("", {"record": name, "class": cls}, value)
            if row.get("max_lineage_depth") is not None:
                attr_depth.add("", {"record": name}, row["max_lineage_depth"])
            if row.get("sharing_factor") is not None:
                attr_sharing.add("", {"record": name}, row["sharing_factor"])

        attr_xdup = PromFamily(
            "repro_attr_cross_duplicate_share",
            "gauge",
            "Share of a record's unique chunk bytes other records also hold",
        )
        for name, row in self._attr_census_rows.items():
            if row.get("cross_duplicate_share") is not None:
                attr_xdup.add(
                    "", {"record": name}, row["cross_duplicate_share"]
                )
        attr_families = [attr_class, attr_depth, attr_sharing, attr_xdup]
        attr_records_total = PromFamily(
            "repro_attr_records_seen_total",
            "counter",
            "Records with an attribution summary observed",
        ).add("", None, len(self._attr_records))
        attr_families.append(attr_records_total)
        if self._attr_census is not None:
            pool = self._attr_census.get("pool_forecast_ratio")
            if pool is not None:
                attr_families.append(
                    PromFamily(
                        "repro_attr_pool_forecast_ratio",
                        "gauge",
                        "Attainable fleet dedup with one shared chunk pool",
                    ).add("", None, pool)
                )

        return render_prometheus(
            registry_families()
            + [state_family, beat_family, beats_family, quantile_family]
            + scalar_families
            + attr_families
        )
