"""Real-time monitoring plane over the journal/metrics machinery.

The post-hoc surfaces (``repro health``, the HTML report) grade a run
after it finishes; this package watches one *in flight*:

* :mod:`~repro.telemetry.live.tail` — cursor-based journal tailing
  (:class:`JournalFollower`, :func:`follow_journal`), torn-line safe,
  multi-file merge in canonical order;
* :mod:`~repro.telemetry.live.liveness` — heartbeat-deadline liveness
  and straggler detection (:class:`LivenessTracker`), order-independent;
* :mod:`~repro.telemetry.live.slo` — rolling-window SLO engine
  (:class:`SloEngine`): latency quantiles, dedup EWMA drift, backlog
  depth, error-budget burn;
* :mod:`~repro.telemetry.live.monitor` — :class:`LiveMonitor`, the fold
  of all three plus rendering (health report / JSON / Prometheus text);
* :mod:`~repro.telemetry.live.server` — :class:`MonitorServer`, the
  stdlib HTTP surface (``/metrics``, ``/healthz``, ``/slo``).

Kept out of ``repro.telemetry``'s eager imports deliberately: the
telemetry package is imported by every instrumented hot-path module, and
the monitoring plane is only needed by whoever runs the monitor.
"""

from .liveness import HUNG, LAGGING, OK, LivenessTracker, LivenessVerdict
from .monitor import LiveMonitor
from .server import MonitorServer
from .slo import SloConfig, SloEngine
from .tail import JournalFollower, follow_journal

__all__ = [
    "OK",
    "LAGGING",
    "HUNG",
    "LivenessTracker",
    "LivenessVerdict",
    "LiveMonitor",
    "MonitorServer",
    "SloConfig",
    "SloEngine",
    "JournalFollower",
    "follow_journal",
]
