"""Self-contained HTML run report: timelines, rollups, health findings.

Renders one :class:`~repro.telemetry.aggregate.FleetRollup` (plus its
:class:`~repro.telemetry.health.HealthReport`) as a single HTML file
with inline CSS and inline SVG — no external assets, so the artifact a
CI job uploads opens anywhere.  Per node, an SVG timeline lays the
simulated clock on the x axis with one lane per rank: checkpoint bars
run from ``produced_at`` to ``persisted_at`` (the flush backlog is the
bar), crashes are red markers, restarts green, tier outages shade the
whole node band, and retries tick in amber.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..utils.units import format_bytes
from .aggregate import FleetRollup
from .events import (
    ATTRIBUTION_SUMMARY,
    CHECKPOINT_COMMITTED,
    CRASH,
    FLUSH_RETRY,
    FLUSH_ROUTE_AROUND,
    RESTART,
    TIER_OUTAGE,
)
from .health import CRITICAL, OK, WARN, HealthReport

_SEVERITY_COLOR = {OK: "#2e7d32", WARN: "#e65100", CRITICAL: "#b71c1c"}

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em auto;
       max-width: 72em; color: #1c2733; }
h1 { border-bottom: 2px solid #1c2733; padding-bottom: 0.2em; }
h2 { margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.8em 0; }
th, td { border: 1px solid #c4ccd4; padding: 0.3em 0.8em; text-align: right; }
th { background: #eef1f4; }
td.name, th.name { text-align: left; }
.badge { display: inline-block; padding: 0.15em 0.7em; border-radius: 0.8em;
         color: #fff; font-weight: 600; }
.finding { margin: 0.5em 0; padding: 0.5em 0.8em; border-left: 4px solid;
           background: #f7f8fa; }
.finding pre { overflow-x: auto; font-size: 0.8em; background: #eef1f4;
               padding: 0.5em; }
.lane-label { font-size: 11px; fill: #444; }
.axis { font-size: 10px; fill: #666; }
svg { background: #fcfdfe; border: 1px solid #d7dde3; margin: 0.5em 0; }
"""


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "inf"
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def _node_timeline_svg(
    node: str, events: List[Dict[str, Any]], width: int = 900
) -> str:
    """Inline SVG timeline of one node's journal events on the sim clock."""
    timed = [e for e in events if e.get("sim_time") is not None]
    if not timed:
        return "<p>(no simulated-time events for this node)</p>"
    t_lo = min(e["sim_time"] for e in timed)
    t_hi = max(
        max(e.get("persisted_at", e["sim_time"]) or e["sim_time"], e["sim_time"])
        for e in timed
    )
    if t_hi <= t_lo:
        t_hi = t_lo + 1.0
    ranks = sorted(
        {e.get("rank") for e in timed if e.get("rank") is not None},
        key=lambda r: (r is None, r),
    )
    if not ranks:
        ranks = [None]
    lane_h, pad_l, pad_t = 26, 70, 14
    height = pad_t + lane_h * len(ranks) + 30

    def x(t: float) -> float:
        return pad_l + (t - t_lo) / (t_hi - t_lo) * (width - pad_l - 14)

    def y(rank) -> float:
        idx = ranks.index(rank) if rank in ranks else 0
        return pad_t + idx * lane_h

    parts = [
        f'<svg width="{width}" height="{height}" '
        f'xmlns="http://www.w3.org/2000/svg" role="img" '
        f'aria-label="timeline of node {html.escape(node)}">'
    ]
    # Outage bands shade the whole node.
    for e in timed:
        if e.get("type") != TIER_OUTAGE:
            continue
        x0 = x(e["sim_time"])
        if e.get("kind") == "permanent":
            x1 = width - 14
        else:
            x1 = x(min(t_hi, e["sim_time"] + float(e.get("duration", 0.0))))
        parts.append(
            f'<rect x="{x0:.1f}" y="{pad_t}" width="{max(x1 - x0, 2):.1f}" '
            f'height="{lane_h * len(ranks)}" fill="#b71c1c" opacity="0.12">'
            f"<title>{html.escape(e.get('kind', '?'))} outage: "
            f"{html.escape(str(e.get('tier', '?')))}</title></rect>"
        )
    # Lanes and labels.
    for rank in ranks:
        ly = y(rank)
        label = f"rank {rank}" if rank is not None else "(node)"
        parts.append(
            f'<line x1="{pad_l}" y1="{ly + lane_h - 6}" x2="{width - 14}" '
            f'y2="{ly + lane_h - 6}" stroke="#e0e5ea"/>'
            f'<text x="4" y="{ly + lane_h - 10}" class="lane-label">'
            f"{html.escape(label)}</text>"
        )
    # Events.
    for e in timed:
        kind = e.get("type")
        ly = y(e.get("rank"))
        ex = x(e["sim_time"])
        if kind == CHECKPOINT_COMMITTED:
            persisted = e.get("persisted_at")
            x1 = x(persisted) if persisted is not None else ex + 2
            parts.append(
                f'<rect x="{ex:.1f}" y="{ly + 4:.1f}" '
                f'width="{max(x1 - ex, 2):.1f}" height="{lane_h - 14}" '
                f'rx="2" fill="#1565c0" opacity="0.75">'
                f"<title>ckpt {e.get('ckpt_id')}: "
                f"{format_bytes(int(e.get('stored_bytes', 0)))} stored, "
                f"persisted t={_fmt(persisted if persisted is not None else 0)}"
                f"</title></rect>"
            )
        elif kind == CRASH:
            parts.append(
                f'<path d="M {ex:.1f} {ly + 2:.1f} l 5 9 l -10 0 z" '
                f'fill="#b71c1c"><title>crash t={_fmt(e["sim_time"])}</title>'
                f"</path>"
            )
        elif kind == RESTART:
            parts.append(
                f'<circle cx="{ex:.1f}" cy="{ly + lane_h / 2 - 3:.1f}" r="4" '
                f'fill="#2e7d32"><title>restart from ckpt '
                f"{e.get('restored_ckpt_id')}, lost "
                f"{_fmt(float(e.get('lost_work_seconds', 0.0)))}s</title>"
                f"</circle>"
            )
        elif kind in (FLUSH_RETRY, FLUSH_ROUTE_AROUND):
            parts.append(
                f'<line x1="{ex:.1f}" y1="{ly + 4:.1f}" x2="{ex:.1f}" '
                f'y2="{ly + lane_h - 8:.1f}" stroke="#e65100" '
                f'stroke-width="2"><title>{html.escape(kind)}: '
                f"{html.escape(str(e.get('tier', e.get('key', '?'))))}"
                f"</title></line>"
            )
    # Time axis.
    axis_y = pad_t + lane_h * len(ranks) + 12
    parts.append(
        f'<line x1="{pad_l}" y1="{axis_y - 8}" x2="{width - 14}" '
        f'y2="{axis_y - 8}" stroke="#888"/>'
        f'<text x="{pad_l}" y="{axis_y + 4}" class="axis">t={_fmt(t_lo)}s</text>'
        f'<text x="{width - 90}" y="{axis_y + 4}" class="axis">'
        f"t={_fmt(t_hi)}s</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def _fleet_table(rollup: FleetRollup) -> str:
    summary = rollup.summary()
    rows = [
        ("events", str(summary["events"])),
        ("nodes / ranks", f"{summary['nodes']} / {summary['ranks']}"),
        ("checkpoints committed", str(summary["checkpoints"])),
        ("full bytes", format_bytes(summary["full_bytes"])),
        ("stored bytes", format_bytes(summary["stored_bytes"])),
        ("fleet dedup ratio", f"{_fmt(summary['dedup_ratio'])}x"),
        ("max flush backlog", f"{_fmt(summary['max_backlog_seconds'])} s"),
        ("crashes / lost work", f"{summary['crashes']} / "
                                f"{_fmt(summary['lost_work_seconds'])} s"),
        ("restore amplification", _fmt(summary["restore_amplification"])),
        ("tier outages", str(summary["tier_outages"])),
        ("salvages / record faults", f"{summary['salvages']} / "
                                     f"{summary['record_faults']}"),
    ]
    cells = "".join(
        f'<tr><td class="name">{html.escape(k)}</td><td>{html.escape(v)}</td></tr>'
        for k, v in rows
    )
    return f"<table>{cells}</table>"


def _nodes_table(rollup: FleetRollup) -> str:
    nodes = rollup.nodes()
    if not nodes:
        return "<p>(no per-node data)</p>"
    head = (
        '<tr><th class="name">node</th><th>ranks</th><th>ckpts</th>'
        "<th>stored</th><th>dedup</th><th>max backlog (s)</th>"
        "<th>retries</th><th>crashes</th><th>lost work (s)</th></tr>"
    )
    body = "".join(
        f'<tr><td class="name">{html.escape(name)}</td>'
        f"<td>{int(n['ranks'])}</td><td>{int(n['checkpoints'])}</td>"
        f"<td>{format_bytes(int(n['stored_bytes']))}</td>"
        f"<td>{_fmt(n['dedup_ratio'])}x</td>"
        f"<td>{_fmt(n['max_backlog_seconds'])}</td>"
        f"<td>{int(n['retries'])}</td><td>{int(n['crashes'])}</td>"
        f"<td>{_fmt(n['lost_work_seconds'])}</td></tr>"
        for name, n in sorted(nodes.items())
    )
    return f"<table>{head}{body}</table>"


#: Byte-class fill colors for the attribution stacked bars.
_CLASS_COLOR = {
    "first": "#1565c0",
    "shift": "#6a1b9a",
    "fixed": "#9e9e9e",
    "zero": "#cfd8dc",
}


def _attribution_bar(row: Dict[str, Any], width: int = 420) -> str:
    """One record's per-class stacked bar as inline SVG."""
    classes = [
        (name, int(row.get(f"{name}_bytes", 0) or 0)) for name in _CLASS_COLOR
    ]
    total = sum(v for _, v in classes)
    if total <= 0:
        return "<p>(no attributed bytes)</p>"
    height = 18
    parts = [
        f'<svg width="{width}" height="{height}" '
        f'xmlns="http://www.w3.org/2000/svg" role="img" '
        f'aria-label="byte classes of record '
        f'{html.escape(str(row.get("record", "?")))}">'
    ]
    x0 = 0.0
    for name, value in classes:
        if value <= 0:
            continue
        w = value / total * width
        parts.append(
            f'<rect x="{x0:.1f}" y="0" width="{max(w, 1):.1f}" '
            f'height="{height}" fill="{_CLASS_COLOR[name]}">'
            f"<title>{html.escape(name)}: {format_bytes(value)} "
            f"({100 * value / total:.1f}%)</title></rect>"
        )
        x0 += w
    parts.append("</svg>")
    return "".join(parts)


def _attribution_html(rollup: FleetRollup) -> str:
    """Attribution section: one stacked bar + stats per attributed record."""
    rows = [
        e
        for e in rollup.events_of(ATTRIBUTION_SUMMARY)
        if e.get("scope") == "record"
    ]
    census = [
        e
        for e in rollup.events_of(ATTRIBUTION_SUMMARY)
        if e.get("scope") == "census"
    ]
    if not rows and not census:
        return "<p>(no attribution events in this run)</p>"
    latest: Dict[str, Dict[str, Any]] = {}
    for row in rows:
        latest[str(row.get("record", "?"))] = row
    legend = " ".join(
        f'<span class="badge" style="background:{color}">{name}</span>'
        for name, color in _CLASS_COLOR.items()
    )
    head = (
        '<tr><th class="name">record</th><th>bytes by class</th>'
        "<th>ckpts</th><th>logical</th><th>stored</th><th>dedup</th>"
        "<th>cells</th><th>sharing</th><th>depth</th></tr>"
    )
    body = []
    for name, row in sorted(latest.items()):
        logical = int(row.get("logical_bytes", 0) or 0)
        stored = int(row.get("stored_bytes", 0) or 0)
        dedup = f"{logical / stored:.2f}x" if stored else "—"
        body.append(
            f'<tr><td class="name">{html.escape(name)}</td>'
            f"<td>{_attribution_bar(row)}</td>"
            f"<td>{int(row.get('num_checkpoints', 0) or 0)}</td>"
            f"<td>{format_bytes(logical)}</td>"
            f"<td>{format_bytes(stored)}</td>"
            f"<td>{html.escape(dedup)}</td>"
            f"<td>{int(row.get('unique_cells', 0) or 0)}</td>"
            f"<td>{_fmt(float(row.get('sharing_factor', 0) or 0))}x</td>"
            f"<td>{int(row.get('max_lineage_depth', 0) or 0)}</td></tr>"
        )
    table = f"<p>{legend}</p><table>{head}{''.join(body)}</table>" if body else ""
    pool = ""
    if census:
        c = census[-1]
        pool = (
            f"<p>cross-record census over {int(c.get('num_records', 0) or 0)} "
            f"record(s): shared-pool forecast "
            f"<strong>{_fmt(float(c.get('pool_forecast_ratio', 0) or 0))}x"
            f"</strong> vs best single record "
            f"{_fmt(float(c.get('best_intra_ratio', 0) or 0))}x "
            f"(per-record p50 {_fmt(float(c.get('record_pool_ratio_p50', 0) or 0))}x, "
            f"p99 {_fmt(float(c.get('record_pool_ratio_p99', 0) or 0))}x)</p>"
        )
    return table + pool


def _findings_html(health: HealthReport, max_evidence: int = 5) -> str:
    if not health.findings:
        return (
            '<p><span class="badge" style="background:#2e7d32">ok</span> '
            "No findings — every rule passed.</p>"
        )
    parts = []
    for finding in health.findings:
        color = _SEVERITY_COLOR.get(finding.severity, "#555")
        where = finding.node or "fleet"
        if finding.rank is not None:
            where += f" / rank {finding.rank}"
        evidence = ""
        if finding.evidence:
            import json as _json

            shown = finding.evidence[:max_evidence]
            dump = "\n".join(
                _json.dumps(e, sort_keys=True, default=str) for e in shown
            )
            more = len(finding.evidence) - len(shown)
            suffix = f"\n… {more} more event(s)" if more > 0 else ""
            evidence = (
                f"<details><summary>{len(finding.evidence)} evidence "
                f"event(s)</summary><pre>{html.escape(dump + suffix)}</pre>"
                f"</details>"
            )
        parts.append(
            f'<div class="finding" style="border-color:{color}">'
            f'<span class="badge" style="background:{color}">'
            f"{html.escape(finding.severity)}</span> "
            f"<strong>{html.escape(finding.rule)}</strong> "
            f"({html.escape(where)})<br>{html.escape(finding.message)}"
            f"{evidence}</div>"
        )
    return "".join(parts)


def render_report(
    rollup: FleetRollup,
    health: HealthReport,
    title: str = "Checkpoint fleet run report",
) -> str:
    """Render one run as a self-contained HTML document string."""
    status = health.status
    color = _SEVERITY_COLOR.get(status, "#555")
    by_node: Dict[str, List[Dict[str, Any]]] = {}
    for event in rollup.events:
        by_node.setdefault(str(event.get("node", "")), []).append(event)
    timelines = "".join(
        f"<h3>{html.escape(node)}</h3>{_node_timeline_svg(node, events)}"
        for node, events in sorted(by_node.items())
    )
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{html.escape(title)}</title>
<style>{_CSS}</style></head><body>
<h1>{html.escape(title)}
<span class="badge" style="background:{color}">{html.escape(status)}</span></h1>
<h2>Fleet summary</h2>
{_fleet_table(rollup)}
<h2>Per-node rollup</h2>
{_nodes_table(rollup)}
<h2>Chunk-lineage attribution</h2>
{_attribution_html(rollup)}
<h2>Health findings</h2>
{_findings_html(health)}
<h2>Timelines</h2>
{timelines if timelines else "<p>(no events)</p>"}
</body></html>
"""


def write_report(
    path: Union[str, Path],
    rollup: FleetRollup,
    health: HealthReport,
    title: str = "Checkpoint fleet run report",
) -> Path:
    """Render and write the HTML report; returns the output path."""
    out = Path(path)
    out.write_text(render_report(rollup, health, title=title))
    return out
