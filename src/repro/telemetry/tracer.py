"""Dual-clock tracing spans.

A span measures one named region on two clocks at once:

* **wall clock** — ``time.perf_counter`` around the block, optionally fed
  into a :class:`~repro.utils.timing.PhaseTimer` so existing phase
  accounting keeps working unchanged, and
* **simulated clock** — a :class:`~repro.kokkos.KernelCounts` delta taken
  from the span's execution space via ``progress_snapshot()``.  Counts are
  monotonic and fusion-aware, so a span opened inside a fused kernel block
  still attributes exactly the device work its body performed, and ledger
  ``clear()`` calls between checkpoints cannot corrupt span attribution.

Spans nest per thread (thread-local stacks record parent/child edges) and
carry free-form attributes (``span.set(bytes=..., method=...)``).  When
telemetry is disabled, :meth:`Tracer.span` returns a shared no-op handle
(or a timer-only handle when a ``PhaseTimer`` sink was passed), so
instrumented call sites stay cheap in production runs.

Pricing count deltas into simulated seconds is deliberately *not* done
here — the exporters do it with a :class:`~repro.gpusim.KernelCostModel`,
keeping this module free of gpusim imports.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ._state import STATE


@dataclass
class SpanRecord:
    """One completed span.

    ``start`` is seconds since the tracer's epoch on the wall clock;
    ``counts`` is the device-work delta (``None`` when the span had no
    metered space).  ``parent`` is the index of the enclosing span in the
    tracer's span list, or ``-1`` for a root.
    """

    index: int
    parent: int
    name: str
    tid: int
    thread_name: str
    start: float
    wall_seconds: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    space: Optional[str] = None
    counts: Any = None


@dataclass
class InstantRecord:
    """A zero-duration event (retry fired, tier routed around, salvage)."""

    name: str
    tid: int
    thread_name: str
    ts: float
    attrs: Dict[str, Any] = field(default_factory=dict)


class _NullSpan:
    """Shared do-nothing handle returned when telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _TimerOnlySpan:
    """Disabled-mode handle that still feeds a PhaseTimer.

    Engines route their wall-clock phase accounting through spans; when
    telemetry is off that accounting must keep working, just without any
    record being retained.
    """

    __slots__ = ("_timer", "_name", "_t0")

    def __init__(self, timer, name: str) -> None:
        self._timer = timer
        self._name = name

    def __enter__(self) -> "_TimerOnlySpan":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._timer.add(self._name, time.perf_counter() - self._t0)
        return False

    def set(self, **attrs: Any) -> "_TimerOnlySpan":
        return self


class _Span:
    """Live span handle; builds a :class:`SpanRecord` on exit."""

    __slots__ = (
        "_tracer",
        "_name",
        "_space",
        "_timer",
        "_attrs",
        "_index",
        "_parent",
        "_t0",
        "_snap0",
    )

    def __init__(self, tracer: "Tracer", name: str, space, timer, attrs) -> None:
        self._tracer = tracer
        self._name = name
        self._space = space
        self._timer = timer
        self._attrs = dict(attrs) if attrs else {}

    def set(self, **attrs: Any) -> "_Span":
        """Attach attributes; chainable, usable before or inside the block."""
        self._attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        stack = tracer._stack()
        # Reserve the record slot at entry so children observed while this
        # span is still open already know their parent's index.
        with tracer._lock:
            self._index = len(tracer._spans)
            tracer._spans.append(None)
        self._parent = stack[-1]._index if stack else -1
        stack.append(self)
        space = self._space
        self._snap0 = (
            space.progress_snapshot()
            if space is not None and getattr(space, "metered", False)
            else None
        )
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._t0
        counts = None
        if self._snap0 is not None:
            counts = self._space.progress_snapshot() - self._snap0
        if self._timer is not None:
            self._timer.add(self._name, wall)
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - unbalanced exit safety net
            try:
                stack.remove(self)
            except ValueError:
                pass
        thread = threading.current_thread()
        record = SpanRecord(
            index=self._index,
            parent=self._parent,
            name=self._name,
            tid=thread.ident or 0,
            thread_name=thread.name,
            start=self._t0 - tracer.epoch,
            wall_seconds=wall,
            attrs=self._attrs,
            space=getattr(self._space, "name", None) if self._space is not None else None,
            counts=counts,
        )
        with tracer._lock:
            tracer._spans[self._index] = record
        return False


class Tracer:
    """Collects spans and instant events for one process.

    Thread-safe: record storage is lock-protected and the open-span stack
    is thread-local, so spans on different threads nest independently.
    """

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self._spans: List[Optional[SpanRecord]] = []
        self.instants: List[InstantRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, space=None, timer=None, **attrs: Any):
        """Open a dual-clock span (use as a context manager).

        Parameters
        ----------
        name:
            Span label, conventionally dotted (``"tree.serialize"``).
        space:
            Execution space whose metered progress the span attributes as
            simulated work; unmetered spaces (``HostSpace``) record no
            counts.
        timer:
            Optional :class:`~repro.utils.timing.PhaseTimer` that receives
            the wall duration under *name* — even when telemetry is
            disabled.
        attrs:
            Initial span attributes; extend later with ``.set(...)``.
        """
        if not STATE.enabled:
            return _NULL_SPAN if timer is None else _TimerOnlySpan(timer, name)
        return _Span(self, name, space, timer, attrs)

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration event at the current wall time."""
        if not STATE.enabled:
            return
        ts = time.perf_counter() - self.epoch
        thread = threading.current_thread()
        record = InstantRecord(
            name=name,
            tid=thread.ident or 0,
            thread_name=thread.name,
            ts=ts,
            attrs=dict(attrs),
        )
        with self._lock:
            self.instants.append(record)

    def spans(self) -> List[SpanRecord]:
        """Completed spans in slot order (open spans are skipped)."""
        with self._lock:
            return [r for r in self._spans if r is not None]

    def reset(self) -> None:
        """Drop all collected records and restart the epoch."""
        with self._lock:
            self._spans.clear()
            self.instants.clear()
            self.epoch = time.perf_counter()

    def wall_totals(self) -> Dict[str, float]:
        """Span-name → total wall seconds, in first-completion order."""
        out: Dict[str, float] = {}
        for record in self.spans():
            out[record.name] = out.get(record.name, 0.0) + record.wall_seconds
        return out


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer all built-in instrumentation uses."""
    return _TRACER


def span(name: str, space=None, timer=None, **attrs: Any):
    """Open a span on the default tracer (see :meth:`Tracer.span`)."""
    return _TRACER.span(name, space=space, timer=timer, **attrs)


def instant(name: str, **attrs: Any) -> None:
    """Record an instant event on the default tracer."""
    _TRACER.instant(name, **attrs)
