"""Exporters: Chrome ``trace_event`` JSON and Prometheus-style dumps.

The Chrome export writes the standard JSON object format (open it in
Perfetto or ``chrome://tracing``) with the two clocks as two *processes*:

* ``pid 0`` — wall clock: spans exactly where and as long as they ran;
* ``pid 1`` — simulated GPU clock: the same span tree re-timed in
  simulated seconds by pricing each span's :class:`KernelCounts` delta
  with a :class:`~repro.gpusim.KernelCostModel`.

Simulated timestamps are synthetic — the cost model produces durations,
not a timeline — so the exporter lays spans out per thread: roots run
back-to-back in wall-start order and children pack sequentially from
their parent's start.  Durations (and their sums) are exact; only the
gaps are invented.

All gpusim imports happen inside functions so the telemetry package
itself stays import-light for instrumented modules.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry, default_registry
from .tracer import SpanRecord, Tracer, get_tracer


def _default_model(model):
    if model is None:
        from ..gpusim.device import a100
        from ..gpusim.perfmodel import KernelCostModel

        model = KernelCostModel(a100())
    return model


def span_sim_seconds(record: SpanRecord, model=None) -> float:
    """Simulated seconds of one span (0.0 when it had no metered space)."""
    if record.counts is None:
        return 0.0
    return _default_model(model).price_counts(record.counts).total_seconds


def phase_summary(
    tracer: Optional[Tracer] = None,
    model=None,
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """Flat per-span-name totals plus a metrics snapshot.

    This is the blob the bench harness embeds into ``BENCH_*.json``:
    ``{"spans": {name: {count, wall_seconds, sim_seconds}}, "metrics": …}``.
    """
    tracer = tracer if tracer is not None else get_tracer()
    registry = registry if registry is not None else default_registry()
    model = _default_model(model)
    spans: Dict[str, Dict[str, float]] = {}
    for record in tracer.spans():
        row = spans.setdefault(
            record.name, {"count": 0, "wall_seconds": 0.0, "sim_seconds": 0.0}
        )
        row["count"] += 1
        row["wall_seconds"] += record.wall_seconds
        row["sim_seconds"] += span_sim_seconds(record, model)
    return {"spans": spans, "metrics": registry.snapshot()}


# ----------------------------------------------------------------------
# Chrome trace_event export
# ----------------------------------------------------------------------

_WALL_PID = 0
_SIM_PID = 1


def _counts_args(record: SpanRecord) -> Dict[str, Any]:
    args: Dict[str, Any] = dict(record.attrs)
    if record.counts is not None:
        args.update(record.counts.as_dict())
    if record.space is not None:
        args["space"] = record.space
    return args


def _sim_layout(
    records: List[SpanRecord], sim_secs: Dict[int, float]
) -> Dict[int, tuple]:
    """Assign each span a synthetic (start, duration) on the sim clock.

    Per thread, roots run sequentially in wall-start order; children pack
    from their parent's start in wall-start order.  A span's duration is
    its own priced counts, widened to hold its children if an unmetered
    parent wraps metered work.
    """
    children: Dict[int, List[SpanRecord]] = {}
    roots_by_tid: Dict[int, List[SpanRecord]] = {}
    for record in records:
        if record.parent >= 0:
            children.setdefault(record.parent, []).append(record)
        else:
            roots_by_tid.setdefault(record.tid, []).append(record)

    layout: Dict[int, tuple] = {}

    def place(record: SpanRecord, start: float) -> float:
        cursor = start
        for child in sorted(children.get(record.index, []), key=lambda r: r.start):
            cursor += place(child, cursor)
        duration = max(sim_secs.get(record.index, 0.0), cursor - start)
        layout[record.index] = (start, duration)
        return duration

    for tid, roots in roots_by_tid.items():
        cursor = 0.0
        for root in sorted(roots, key=lambda r: r.start):
            cursor += place(root, cursor)
    return layout


def to_chrome_trace(
    tracer: Optional[Tracer] = None, model=None
) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` JSON object (dual-clock tracks)."""
    tracer = tracer if tracer is not None else get_tracer()
    model = _default_model(model)
    records = tracer.spans()
    sim_secs = {r.index: span_sim_seconds(r, model) for r in records}
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": _WALL_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "wall clock"},
        },
        {
            "ph": "M",
            "pid": _SIM_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"simulated GPU ({model.device.name})"},
        },
    ]
    thread_names = {}
    for record in records:
        thread_names.setdefault(record.tid, record.thread_name)
    for tid, tname in sorted(thread_names.items()):
        for pid in (_WALL_PID, _SIM_PID):
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": tname},
                }
            )

    for record in records:
        args = _counts_args(record)
        events.append(
            {
                "ph": "X",
                "pid": _WALL_PID,
                "tid": record.tid,
                "name": record.name,
                "cat": "wall",
                "ts": record.start * 1e6,
                "dur": record.wall_seconds * 1e6,
                "args": args,
            }
        )

    layout = _sim_layout(records, sim_secs)
    for record in records:
        start, duration = layout[record.index]
        args = _counts_args(record)
        args["sim_seconds"] = sim_secs[record.index]
        events.append(
            {
                "ph": "X",
                "pid": _SIM_PID,
                "tid": record.tid,
                "name": record.name,
                "cat": "sim",
                "ts": start * 1e6,
                "dur": duration * 1e6,
                "args": args,
            }
        )

    for inst in tracer.instants:
        events.append(
            {
                "ph": "i",
                "pid": _WALL_PID,
                "tid": inst.tid,
                "name": inst.name,
                "cat": "event",
                "ts": inst.ts * 1e6,
                "s": "t",
                "args": dict(inst.attrs),
            }
        )

    events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0)))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path,
    tracer: Optional[Tracer] = None,
    model=None,
    registry: Optional[MetricsRegistry] = None,
) -> Path:
    """Write the Chrome trace (plus a metrics snapshot) to *path*."""
    registry = registry if registry is not None else default_registry()
    trace = to_chrome_trace(tracer=tracer, model=model)
    trace["metrics"] = metrics_to_json(registry)
    path = Path(path)
    path.write_text(json.dumps(trace, indent=2, default=_json_fallback) + "\n")
    return path


def _json_fallback(obj):
    if isinstance(obj, float) and not math.isfinite(obj):  # pragma: no cover
        return repr(obj)
    as_dict = getattr(obj, "as_dict", None)
    if callable(as_dict):
        return as_dict()
    return repr(obj)


# ----------------------------------------------------------------------
# Metrics dumps
# ----------------------------------------------------------------------


def metrics_to_json(registry: Optional[MetricsRegistry] = None) -> Dict[str, dict]:
    """Flat JSON snapshot of every instrument in *registry*."""
    registry = registry if registry is not None else default_registry()
    return registry.snapshot()


def _prom_name(name: str) -> str:
    sanitized = "".join(c if (c.isalnum() or c == "_") else "_" for c in name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] == "_"):
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _prom_number(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def metrics_to_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Prometheus text exposition format for every instrument."""
    registry = registry if registry is not None else default_registry()
    lines: List[str] = []
    with registry._lock:
        instruments = sorted(registry._instruments.items())
    for name, inst in instruments:
        prom = _prom_name(name)
        if inst.help:
            lines.append(f"# HELP {prom} {inst.help}")
        lines.append(f"# TYPE {prom} {inst.kind}")
        if inst.kind == "histogram":
            running = 0
            for boundary, slot in zip(inst.buckets, inst._bucket_counts):
                running += slot
                lines.append(
                    f'{prom}_bucket{{le="{_prom_number(float(boundary))}"}} {running}'
                )
            lines.append(f'{prom}_bucket{{le="+Inf"}} {inst.count}')
            lines.append(f"{prom}_sum {_prom_number(inst.sum)}")
            lines.append(f"{prom}_count {inst.count}")
        else:
            lines.append(f"{prom} {_prom_number(inst.value)}")
    return "\n".join(lines) + "\n"
