"""Exporters: Chrome ``trace_event`` JSON and Prometheus-style dumps.

The Chrome export writes the standard JSON object format (open it in
Perfetto or ``chrome://tracing``) with the two clocks as two *processes*:

* ``pid 0`` — wall clock: spans exactly where and as long as they ran;
* ``pid 1`` — simulated GPU clock: the same span tree re-timed in
  simulated seconds by pricing each span's :class:`KernelCounts` delta
  with a :class:`~repro.gpusim.KernelCostModel`.

Simulated timestamps are synthetic — the cost model produces durations,
not a timeline — so the exporter lays spans out per thread: roots run
back-to-back in wall-start order and children pack sequentially from
their parent's start.  Durations (and their sums) are exact; only the
gaps are invented.

All gpusim imports happen inside functions so the telemetry package
itself stays import-light for instrumented modules.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry, default_registry
from .tracer import SpanRecord, Tracer, get_tracer


def _default_model(model):
    if model is None:
        from ..gpusim.device import a100
        from ..gpusim.perfmodel import KernelCostModel

        model = KernelCostModel(a100())
    return model


def span_sim_seconds(record: SpanRecord, model=None) -> float:
    """Simulated seconds of one span (0.0 when it had no metered space)."""
    if record.counts is None:
        return 0.0
    return _default_model(model).price_counts(record.counts).total_seconds


def phase_summary(
    tracer: Optional[Tracer] = None,
    model=None,
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """Flat per-span-name totals plus a metrics snapshot.

    This is the blob the bench harness embeds into ``BENCH_*.json``:
    ``{"spans": {name: {count, wall_seconds, sim_seconds}}, "metrics": …}``.
    """
    tracer = tracer if tracer is not None else get_tracer()
    registry = registry if registry is not None else default_registry()
    model = _default_model(model)
    spans: Dict[str, Dict[str, float]] = {}
    for record in tracer.spans():
        row = spans.setdefault(
            record.name, {"count": 0, "wall_seconds": 0.0, "sim_seconds": 0.0}
        )
        row["count"] += 1
        row["wall_seconds"] += record.wall_seconds
        row["sim_seconds"] += span_sim_seconds(record, model)
    return {"spans": spans, "metrics": registry.snapshot()}


# ----------------------------------------------------------------------
# Chrome trace_event export
# ----------------------------------------------------------------------

_WALL_PID = 0
_SIM_PID = 1


def _counts_args(record: SpanRecord) -> Dict[str, Any]:
    args: Dict[str, Any] = dict(record.attrs)
    if record.counts is not None:
        args.update(record.counts.as_dict())
    if record.space is not None:
        args["space"] = record.space
    return args


def _sim_layout(
    records: List[SpanRecord], sim_secs: Dict[int, float]
) -> Dict[int, tuple]:
    """Assign each span a synthetic (start, duration) on the sim clock.

    Per thread, roots run sequentially in wall-start order; children pack
    from their parent's start in wall-start order.  A span's duration is
    its own priced counts, widened to hold its children if an unmetered
    parent wraps metered work.
    """
    children: Dict[int, List[SpanRecord]] = {}
    roots_by_tid: Dict[int, List[SpanRecord]] = {}
    for record in records:
        if record.parent >= 0:
            children.setdefault(record.parent, []).append(record)
        else:
            roots_by_tid.setdefault(record.tid, []).append(record)

    layout: Dict[int, tuple] = {}

    def place(record: SpanRecord, start: float) -> float:
        cursor = start
        for child in sorted(children.get(record.index, []), key=lambda r: r.start):
            cursor += place(child, cursor)
        duration = max(sim_secs.get(record.index, 0.0), cursor - start)
        layout[record.index] = (start, duration)
        return duration

    for tid, roots in roots_by_tid.items():
        cursor = 0.0
        for root in sorted(roots, key=lambda r: r.start):
            cursor += place(root, cursor)
    return layout


def to_chrome_trace(
    tracer: Optional[Tracer] = None, model=None
) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` JSON object (dual-clock tracks)."""
    tracer = tracer if tracer is not None else get_tracer()
    model = _default_model(model)
    records = tracer.spans()
    sim_secs = {r.index: span_sim_seconds(r, model) for r in records}
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": _WALL_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "wall clock"},
        },
        {
            "ph": "M",
            "pid": _SIM_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"simulated GPU ({model.device.name})"},
        },
    ]
    thread_names = {}
    for record in records:
        thread_names.setdefault(record.tid, record.thread_name)
    for tid, tname in sorted(thread_names.items()):
        for pid in (_WALL_PID, _SIM_PID):
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": tname},
                }
            )

    for record in records:
        args = _counts_args(record)
        events.append(
            {
                "ph": "X",
                "pid": _WALL_PID,
                "tid": record.tid,
                "name": record.name,
                "cat": "wall",
                "ts": record.start * 1e6,
                "dur": record.wall_seconds * 1e6,
                "args": args,
            }
        )

    layout = _sim_layout(records, sim_secs)
    for record in records:
        start, duration = layout[record.index]
        args = _counts_args(record)
        args["sim_seconds"] = sim_secs[record.index]
        events.append(
            {
                "ph": "X",
                "pid": _SIM_PID,
                "tid": record.tid,
                "name": record.name,
                "cat": "sim",
                "ts": start * 1e6,
                "dur": duration * 1e6,
                "args": args,
            }
        )

    for inst in tracer.instants:
        events.append(
            {
                "ph": "i",
                "pid": _WALL_PID,
                "tid": inst.tid,
                "name": inst.name,
                "cat": "event",
                "ts": inst.ts * 1e6,
                "s": "t",
                "args": dict(inst.attrs),
            }
        )

    events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0)))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path,
    tracer: Optional[Tracer] = None,
    model=None,
    registry: Optional[MetricsRegistry] = None,
) -> Path:
    """Write the Chrome trace (plus a metrics snapshot) to *path*."""
    registry = registry if registry is not None else default_registry()
    trace = to_chrome_trace(tracer=tracer, model=model)
    trace["metrics"] = metrics_to_json(registry)
    path = Path(path)
    path.write_text(json.dumps(trace, indent=2, default=_json_fallback) + "\n")
    return path


def _json_fallback(obj):
    if isinstance(obj, float) and not math.isfinite(obj):  # pragma: no cover
        return repr(obj)
    as_dict = getattr(obj, "as_dict", None)
    if callable(as_dict):
        return as_dict()
    return repr(obj)


# ----------------------------------------------------------------------
# Metrics dumps
# ----------------------------------------------------------------------


def metrics_to_json(registry: Optional[MetricsRegistry] = None) -> Dict[str, dict]:
    """Flat JSON snapshot of every instrument in *registry*."""
    registry = registry if registry is not None else default_registry()
    return registry.snapshot()


def _prom_name(name: str) -> str:
    sanitized = "".join(c if (c.isalnum() or c == "_") else "_" for c in name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] == "_"):
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _prom_number(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def prom_escape_label_value(value) -> str:
    """Escape a label value per the text exposition format.

    Backslash, double quote, and line feed are the three characters the
    format requires escaping inside ``label="..."``; everything else
    passes through (UTF-8 is legal in label values).
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _prom_escape_help(text: str) -> str:
    """HELP text escapes backslash and line feed (but not quotes)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def prom_sample_line(name: str, labels: Dict[str, Any], value) -> str:
    """Render one sample line, escaping every label value."""
    if labels:
        body = ",".join(
            f'{key}="{prom_escape_label_value(val)}"'
            for key, val in labels.items()
        )
        return f"{name}{{{body}}} {_prom_number(value)}"
    return f"{name} {_prom_number(value)}"


class PromFamily:
    """One metric family: HELP/TYPE exactly once, then its samples.

    ``samples`` rows are ``(suffix, labels, value)`` — the suffix is
    appended to the family name (``"_bucket"``, ``"_sum"``, ``""``), so a
    histogram's sub-series stay inside their family and the exposition
    keeps the one-TYPE-per-family invariant by construction.
    """

    def __init__(self, name: str, kind: str, help: str = "") -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.samples: List[tuple] = []

    def add(self, suffix: str = "", labels: Optional[Dict[str, Any]] = None, value=0):
        self.samples.append((suffix, dict(labels or {}), value))
        return self

    def lines(self) -> List[str]:
        out = []
        if self.help:
            out.append(f"# HELP {self.name} {_prom_escape_help(self.help)}")
        out.append(f"# TYPE {self.name} {self.kind}")
        for suffix, labels, value in self.samples:
            out.append(prom_sample_line(self.name + suffix, labels, value))
        return out


def render_prometheus(families: List[PromFamily]) -> str:
    """Render families as one exposition page (one HELP/TYPE per family)."""
    seen: Dict[str, str] = {}
    lines: List[str] = []
    for family in families:
        if family.name in seen:
            raise ValueError(
                f"metric family {family.name!r} rendered twice — HELP/TYPE "
                f"must appear exactly once per family"
            )
        seen[family.name] = family.kind
        lines.extend(family.lines())
    return "\n".join(lines) + "\n"


def _histogram_family(prom: str, inst) -> PromFamily:
    family = PromFamily(prom, "histogram", inst.help)
    running = 0
    for boundary, slot in zip(inst.buckets, inst._bucket_counts):
        running += slot
        family.add("_bucket", {"le": _prom_number(float(boundary))}, running)
    family.add("_bucket", {"le": "+Inf"}, inst.count)
    family.add("_sum", None, inst.sum)
    family.add("_count", None, inst.count)
    return family


def registry_families(
    registry: Optional[MetricsRegistry] = None,
) -> List[PromFamily]:
    """Every instrument of *registry* as :class:`PromFamily` rows."""
    registry = registry if registry is not None else default_registry()
    with registry._lock:
        instruments = sorted(registry._instruments.items())
    families: List[PromFamily] = []
    taken: Dict[str, int] = {}
    for name, inst in instruments:
        prom = _prom_name(name)
        # Distinct registry names can sanitize to one prom name
        # ("map.probes" vs "map_probes"); a duplicate family would make
        # the page invalid, so disambiguate with a numeric suffix.
        taken[prom] = taken.get(prom, 0) + 1
        if taken[prom] > 1:
            prom = f"{prom}_{taken[prom]}"
        if inst.kind == "histogram":
            families.append(_histogram_family(prom, inst))
        else:
            families.append(
                PromFamily(prom, inst.kind, inst.help).add("", None, inst.value)
            )
    return families


def metrics_to_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Prometheus text exposition format for every instrument."""
    return render_prometheus(registry_families(registry))


# ----------------------------------------------------------------------
# Exposition-format validation (used by tests and the live-monitor smoke)
# ----------------------------------------------------------------------

_NAME_RE = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(
    rf"^(?P<name>{_NAME_RE})(?P<labels>\{{.*\}})? "
    rf"(?P<value>NaN|[+-]Inf|[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?)"
    rf"( \d+)?$"
)
_VALID_KINDS = {"counter", "gauge", "histogram", "summary", "untyped"}


def _parse_labels(body: str) -> Optional[Dict[str, str]]:
    """Parse a ``{a="x",b="y"}`` label block honoring escape sequences.

    Returns ``None`` (not an empty dict) when the block is malformed.
    """
    inner = body[1:-1]
    labels: Dict[str, str] = {}
    i = 0
    while i < len(inner):
        eq = inner.find("=", i)
        if eq < 0:
            return None
        name = inner[i:eq]
        if not re.fullmatch(_NAME_RE, name):
            return None
        if eq + 1 >= len(inner) or inner[eq + 1] != '"':
            return None
        j = eq + 2
        value = []
        while j < len(inner):
            c = inner[j]
            if c == "\\":
                if j + 1 >= len(inner) or inner[j + 1] not in ('\\', '"', "n"):
                    return None
                value.append({"\\": "\\", '"': '"', "n": "\n"}[inner[j + 1]])
                j += 2
                continue
            if c == '"':
                break
            value.append(c)
            j += 1
        else:
            return None  # unterminated value
        labels[name] = "".join(value)
        i = j + 1
        if i < len(inner):
            if inner[i] != ",":
                return None
            i += 1
    return labels


def _family_of(sample_name: str, types: Dict[str, str]) -> str:
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
        if base and base in types:
            return base
    return sample_name


def validate_prometheus_text(text: str) -> List[str]:
    """Line-by-line exposition-format check; returns the problems found.

    Enforces what a scraper actually depends on: every line is a valid
    comment or sample, ``# HELP``/``# TYPE`` appear at most once per
    family with the TYPE before (and not interleaved with) that family's
    samples, TYPE kinds are legal, label blocks parse with their escape
    sequences, and each histogram family has monotonically non-decreasing
    cumulative ``le`` buckets ending in ``+Inf`` plus ``_sum``/``_count``.
    An empty list means the page is compliant.
    """
    problems: List[str] = []
    helps: Dict[str, int] = {}
    types: Dict[str, str] = {}
    family_order: List[str] = []
    closed: set = set()
    buckets: Dict[str, List[tuple]] = {}
    histogram_parts: Dict[str, set] = {}

    def _note(lineno: int, why: str) -> None:
        problems.append(f"line {lineno}: {why}")

    current: Optional[str] = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                _note(lineno, f"unparseable comment {line!r}")
                continue
            kind, name = parts[1], parts[2]
            if kind == "HELP":
                if name in helps:
                    _note(lineno, f"duplicate HELP for family {name}")
                helps[name] = lineno
            else:
                if name in types:
                    _note(lineno, f"duplicate TYPE for family {name}")
                elif len(parts) < 4 or parts[3] not in _VALID_KINDS:
                    _note(lineno, f"invalid TYPE kind in {line!r}")
                else:
                    types[name] = parts[3]
                if current is not None and current != name:
                    closed.add(current)
                current = name
                family_order.append(name)
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            _note(lineno, f"unparseable sample line {line!r}")
            continue
        name = match.group("name")
        label_block = match.group("labels")
        labels = _parse_labels(label_block) if label_block else {}
        if labels is None:
            _note(lineno, f"malformed label block in {line!r}")
            continue
        family = _family_of(name, types)
        if family in types:
            if family in closed:
                _note(
                    lineno,
                    f"sample of family {family} after another family's "
                    f"TYPE — families must not interleave",
                )
            if current != family:
                if current is not None:
                    closed.add(current)
                current = family
            if types[family] == "histogram":
                part = name[len(family):] or ""
                histogram_parts.setdefault(family, set()).add(part)
                if part == "_bucket":
                    if "le" not in labels:
                        _note(lineno, f"histogram bucket without le label")
                    else:
                        buckets.setdefault(family, []).append(
                            (labels["le"], float(match.group("value")), lineno)
                        )
                elif part not in ("_sum", "_count"):
                    _note(
                        lineno,
                        f"histogram family {family} has stray sample {name}",
                    )
    for name in helps:
        if name not in types:
            problems.append(f"HELP without TYPE for family {name}")
    for family, rows in buckets.items():
        les = [le for le, _, _ in rows]
        if les and les[-1] != "+Inf":
            problems.append(f"histogram {family} buckets do not end at +Inf")
        counts = [count for _, count, _ in rows]
        if counts != sorted(counts):
            problems.append(
                f"histogram {family} cumulative bucket counts decrease"
            )
        finite = []
        for le in les:
            if le == "+Inf":
                continue
            try:
                finite.append(float(le))
            except ValueError:
                problems.append(f"histogram {family} has unparseable le={le!r}")
        if finite != sorted(finite):
            problems.append(f"histogram {family} le boundaries out of order")
    for family, parts in histogram_parts.items():
        for required in ("_bucket", "_sum", "_count"):
            if required not in parts:
                problems.append(f"histogram {family} missing {required}")
    return problems
