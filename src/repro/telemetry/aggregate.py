"""Fleet aggregation: merge per-rank journals and metrics into rollups.

A strong-scaling run produces one event journal per simulated rank and
(optionally) one metrics snapshot per process.  This module merges them
into a :class:`FleetRollup` — per-rank, per-node, and fleet-wide dedup
ratio, stored bytes, flush backlog, lost work, and restore amplification
— with **order-independent** semantics: merging the same journals in any
order produces the same merged stream and the same rollup
(property-tested in ``tests/telemetry/test_aggregate.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .events import (
    CHECKPOINT_COMMITTED,
    CRASH,
    FLUSH_RETRY,
    FLUSH_ROUTE_AROUND,
    RECORD_FAULT,
    RESTART,
    RESTORE,
    SALVAGE,
    TIER_OUTAGE,
    EventJournal,
    journal_run_ids,
    merge_key,
)


def _as_records(journal) -> List[Dict[str, Any]]:
    if isinstance(journal, EventJournal):
        return journal.records()
    return list(journal)


def merge_journals(
    journals: Iterable, allow_mixed_runs: bool = False
) -> List[Dict[str, Any]]:
    """Merge journals (record lists or :class:`EventJournal`) into one
    canonically ordered stream.

    The result depends only on the multiset of records, not on the order
    journals are passed in or the order records appear within them.

    Records carrying two or more distinct ``run_id`` values (schema v2
    envelope) are journals from *different runs*; merging them would
    silently conflate unrelated fleets, so it raises ``ValueError``
    unless ``allow_mixed_runs=True``.  Records without a run id (schema
    v1, ad-hoc journals) merge compatibly with anything.
    """
    merged: List[Dict[str, Any]] = []
    for journal in journals:
        merged.extend(_as_records(journal))
    if not allow_mixed_runs:
        run_ids = journal_run_ids(merged)
        if len(run_ids) > 1:
            raise ValueError(
                f"refusing to merge journals from {len(run_ids)} different "
                f"runs: {run_ids} (pass allow_mixed_runs=True to override)"
            )
    merged.sort(key=merge_key)
    return merged


def merge_metrics(
    snapshots: Sequence[Mapping[str, Mapping[str, Any]]]
) -> Dict[str, Dict[str, Any]]:
    """Merge N registry snapshots (``MetricsRegistry.snapshot()`` shape).

    Counters sum, gauges keep their max, histograms sum counts/sums and
    per-bucket counts and combine min/max — all commutative and
    associative, so the merge is order-independent.
    """
    out: Dict[str, Dict[str, Any]] = {}
    for snapshot in snapshots:
        for name, metric in snapshot.items():
            kind = metric.get("type")
            if name not in out:
                merged = dict(metric)
                if kind == "histogram":
                    merged["buckets"] = dict(metric.get("buckets", {}))
                out[name] = merged
                continue
            held = out[name]
            if held.get("type") != kind:
                raise ValueError(
                    f"metric {name!r} has conflicting types across ranks: "
                    f"{held.get('type')!r} vs {kind!r}"
                )
            if kind == "counter":
                held["value"] += metric["value"]
            elif kind == "gauge":
                held["value"] = max(held["value"], metric["value"])
            elif kind == "histogram":
                held["count"] += metric["count"]
                held["sum"] += metric["sum"]
                if metric.get("min") is not None:
                    held["min"] = (
                        metric["min"]
                        if held.get("min") is None
                        else min(held["min"], metric["min"])
                    )
                if metric.get("max") is not None:
                    held["max"] = (
                        metric["max"]
                        if held.get("max") is None
                        else max(held["max"], metric["max"])
                    )
                for le, count in metric.get("buckets", {}).items():
                    held["buckets"][le] = held["buckets"].get(le, 0) + count
            else:
                raise ValueError(f"metric {name!r} has unknown type {kind!r}")
    return out


@dataclass
class RankRollup:
    """Everything the journal said about one (node, rank) emitter."""

    node: str
    rank: Optional[int]
    checkpoints: int = 0
    stored_bytes: int = 0
    full_bytes: int = 0
    #: Per-checkpoint dedup ratios, in merged (simulated-time) order —
    #: the trailing-window input for the health engine.
    dedup_ratios: List[float] = field(default_factory=list)
    #: Per-checkpoint flush backlog (persisted_at − produced_at), where known.
    backlog_seconds: List[float] = field(default_factory=list)
    blocked_seconds: float = 0.0
    device_seconds: float = 0.0
    retries: int = 0
    route_arounds: int = 0
    crashes: int = 0
    cold_restarts: int = 0
    lost_work_seconds: float = 0.0
    restores: int = 0
    restore_payload_bytes: int = 0
    restore_state_bytes: int = 0
    salvages: int = 0
    record_faults: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Aggregate full/stored over every committed checkpoint."""
        if self.stored_bytes == 0:
            return float("inf") if self.full_bytes else 0.0
        return self.full_bytes / self.stored_bytes

    @property
    def restore_amplification(self) -> float:
        """Payload bytes gathered per byte of state restored (≥ 0)."""
        if self.restore_state_bytes == 0:
            return 0.0
        return self.restore_payload_bytes / self.restore_state_bytes

    @property
    def max_backlog_seconds(self) -> float:
        return max(self.backlog_seconds, default=0.0)


@dataclass
class FleetRollup:
    """Merged view over every rank's journal (plus optional metrics)."""

    events: List[Dict[str, Any]]
    ranks: Dict[Tuple[str, Optional[int]], RankRollup]
    metrics: Optional[Dict[str, Dict[str, Any]]] = None
    tier_outages: List[Dict[str, Any]] = field(default_factory=list)

    # -- fleet-wide ----------------------------------------------------
    @property
    def total_stored_bytes(self) -> int:
        return sum(r.stored_bytes for r in self.ranks.values())

    @property
    def total_full_bytes(self) -> int:
        return sum(r.full_bytes for r in self.ranks.values())

    @property
    def dedup_ratio(self) -> float:
        stored = self.total_stored_bytes
        if stored == 0:
            return float("inf") if self.total_full_bytes else 0.0
        return self.total_full_bytes / stored

    @property
    def total_checkpoints(self) -> int:
        return sum(r.checkpoints for r in self.ranks.values())

    @property
    def total_crashes(self) -> int:
        return sum(r.crashes for r in self.ranks.values())

    @property
    def total_lost_work_seconds(self) -> float:
        return sum(r.lost_work_seconds for r in self.ranks.values())

    @property
    def max_backlog_seconds(self) -> float:
        return max((r.max_backlog_seconds for r in self.ranks.values()), default=0.0)

    @property
    def restore_amplification(self) -> float:
        state = sum(r.restore_state_bytes for r in self.ranks.values())
        if state == 0:
            return 0.0
        return sum(r.restore_payload_bytes for r in self.ranks.values()) / state

    # -- per node ------------------------------------------------------
    def nodes(self) -> Dict[str, Dict[str, float]]:
        """Per-node sums of the additive rank fields (+ dedup ratio)."""
        out: Dict[str, Dict[str, float]] = {}
        for rollup in self.ranks.values():
            node = out.setdefault(
                rollup.node,
                {
                    "ranks": 0,
                    "checkpoints": 0,
                    "stored_bytes": 0,
                    "full_bytes": 0,
                    "blocked_seconds": 0.0,
                    "retries": 0,
                    "route_arounds": 0,
                    "crashes": 0,
                    "lost_work_seconds": 0.0,
                    "salvages": 0,
                    "record_faults": 0,
                    "max_backlog_seconds": 0.0,
                },
            )
            node["ranks"] += 1
            node["checkpoints"] += rollup.checkpoints
            node["stored_bytes"] += rollup.stored_bytes
            node["full_bytes"] += rollup.full_bytes
            node["blocked_seconds"] += rollup.blocked_seconds
            node["retries"] += rollup.retries
            node["route_arounds"] += rollup.route_arounds
            node["crashes"] += rollup.crashes
            node["lost_work_seconds"] += rollup.lost_work_seconds
            node["salvages"] += rollup.salvages
            node["record_faults"] += rollup.record_faults
            node["max_backlog_seconds"] = max(
                node["max_backlog_seconds"], rollup.max_backlog_seconds
            )
        for node in out.values():
            stored = node["stored_bytes"]
            node["dedup_ratio"] = (
                node["full_bytes"] / stored
                if stored
                else (float("inf") if node["full_bytes"] else 0.0)
            )
        return out

    def events_of(self, *types: str) -> List[Dict[str, Any]]:
        """Merged-order events filtered to the given types."""
        wanted = set(types)
        return [e for e in self.events if e.get("type") in wanted]

    def summary(self) -> Dict[str, Any]:
        """Flat fleet numbers (what the report's summary table shows)."""
        return {
            "events": len(self.events),
            "nodes": len({r.node for r in self.ranks.values()}),
            "ranks": len(self.ranks),
            "checkpoints": self.total_checkpoints,
            "stored_bytes": self.total_stored_bytes,
            "full_bytes": self.total_full_bytes,
            "dedup_ratio": self.dedup_ratio,
            "max_backlog_seconds": self.max_backlog_seconds,
            "crashes": self.total_crashes,
            "lost_work_seconds": self.total_lost_work_seconds,
            "restore_amplification": self.restore_amplification,
            "tier_outages": len(self.tier_outages),
            "salvages": sum(r.salvages for r in self.ranks.values()),
            "record_faults": sum(r.record_faults for r in self.ranks.values()),
        }


def build_rollup(
    journals: Iterable,
    metrics_snapshots: Sequence[Mapping[str, Mapping[str, Any]]] = (),
) -> FleetRollup:
    """Merge journals (+ optional metric snapshots) into a :class:`FleetRollup`.

    *journals* may be a single record list, a single :class:`EventJournal`,
    or an iterable of either.
    """
    if isinstance(journals, EventJournal):
        journals = [journals]
    else:
        journals = list(journals)
        # A bare record list (rather than a list of journals) is common.
        if journals and isinstance(journals[0], dict):
            journals = [journals]
    events = merge_journals(journals)

    ranks: Dict[Tuple[str, Optional[int]], RankRollup] = {}
    tier_outages: List[Dict[str, Any]] = []

    def rank_of(event: Dict[str, Any]) -> RankRollup:
        key = (str(event.get("node", "")), event.get("rank"))
        if key not in ranks:
            ranks[key] = RankRollup(node=key[0], rank=key[1])
        return ranks[key]

    for event in events:
        kind = event.get("type")
        if kind == CHECKPOINT_COMMITTED:
            rollup = rank_of(event)
            rollup.checkpoints += 1
            stored = int(event.get("stored_bytes", 0))
            full = int(event.get("full_bytes", 0))
            rollup.stored_bytes += stored
            rollup.full_bytes += full
            if stored:
                rollup.dedup_ratios.append(full / stored)
            produced = event.get("produced_at")
            persisted = event.get("persisted_at")
            if produced is not None and persisted is not None:
                rollup.backlog_seconds.append(max(0.0, persisted - produced))
            rollup.blocked_seconds += float(event.get("blocked_seconds", 0.0))
            rollup.device_seconds += float(event.get("device_seconds", 0.0))
        elif kind == FLUSH_RETRY:
            rank_of(event).retries += 1
        elif kind == FLUSH_ROUTE_AROUND:
            rank_of(event).route_arounds += 1
        elif kind == TIER_OUTAGE:
            tier_outages.append(event)
        elif kind == CRASH:
            rank_of(event).crashes += 1
        elif kind == RESTART:
            rollup = rank_of(event)
            rollup.lost_work_seconds += float(event.get("lost_work_seconds", 0.0))
            if event.get("cold"):
                rollup.cold_restarts += 1
        elif kind == RESTORE:
            rollup = rank_of(event)
            rollup.restores += 1
            rollup.restore_payload_bytes += int(event.get("payload_bytes", 0))
            rollup.restore_state_bytes += int(event.get("state_bytes", 0))
        elif kind == SALVAGE:
            rank_of(event).salvages += 1
        elif kind == RECORD_FAULT:
            rank_of(event).record_faults += 1

    return FleetRollup(
        events=events,
        ranks=ranks,
        metrics=merge_metrics(metrics_snapshots) if metrics_snapshots else None,
        tier_outages=tier_outages,
    )
