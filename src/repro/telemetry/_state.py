"""Process-wide telemetry on/off switch.

Kept in its own module so the tracer and the metrics instruments can share
one flag without importing each other.  The flag is a plain attribute read
— no lock, no function call — because it sits on the hot path of every
instrumented kernel phase; enable/disable are rare control operations.

The initial value comes from ``REPRO_TELEMETRY`` so headless runs (CI,
benchmarks) can switch collection on without code changes.
"""

from __future__ import annotations

import os


def _env_enabled() -> bool:
    value = os.environ.get("REPRO_TELEMETRY", "")
    return value.strip().lower() not in ("", "0", "false", "no", "off")


class _TelemetryState:
    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = _env_enabled()


STATE = _TelemetryState()
