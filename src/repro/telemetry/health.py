"""Declarative health rules over fleet rollups.

The journal records what happened; the health engine decides whether it
was *fine*.  Each rule inspects a :class:`~repro.telemetry.aggregate.
FleetRollup` and produces graded :class:`Finding`\\ s (``warn`` /
``critical``) with the evidence events attached, so an operator reading
a finding can jump straight to the journal records that triggered it.
A clean run produces **zero findings** and an overall ``ok`` status —
asserted on the fixed-seed ORANGES run by the acceptance tests.

Rule catalog (see ``docs/OBSERVABILITY.md`` §8):

* :class:`DedupRegressionRule` — per-rank dedup ratio collapsing vs its
  own trailing window (data drifting away from the dedup sweet spot).
* :class:`FlushBacklogRule` — flush backlog (persisted − produced)
  growing monotonically, or the application blocking on host admission.
* :class:`CorruptionRule` — salvage / injected-record-fault sentinels.
* :class:`CrashLoopRule` — crashes per rank; repeated crashes or a cold
  restart (data loss) escalate to ``critical``.
* :class:`TierOutageRule` — injected tier outages, with that tier's
  retry/route-around events as evidence.
* :class:`RestoreLagRule` — restores whose measured critical path blew
  past the cost model's pre-execution prediction.
* :class:`WriteAmplificationRule` — record appends whose bytes written
  dwarf the checkpoints appended (the store regressed toward O(N)
  appends: frames rewritten, index rebuilt whole).
* :class:`PoolCandidateRule` — census rows whose cross-record duplicate
  share marks a record as a strong shared-dedup-pool candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .aggregate import FleetRollup, build_rollup
from .events import (
    ATTRIBUTION_SUMMARY,
    CRASH,
    FLUSH_RETRY,
    FLUSH_ROUTE_AROUND,
    RECORD_APPENDED,
    RECORD_FAULT,
    REPLAY_DIVERGENCE,
    RESTART,
    RESTORE,
    SALVAGE,
    TIER_OUTAGE,
)

OK = "ok"
WARN = "warn"
CRITICAL = "critical"
_SEVERITY_RANK = {OK: 0, WARN: 1, CRITICAL: 2}


def severity_rank(severity: str) -> int:
    """Numeric ordering of ``ok`` < ``warn`` < ``critical``."""
    return _SEVERITY_RANK[severity]


@dataclass
class Finding:
    """One graded health observation with its evidence events."""

    rule: str
    severity: str  # WARN | CRITICAL
    message: str
    node: Optional[str] = None
    rank: Optional[int] = None
    evidence: List[Dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "node": self.node,
            "rank": self.rank,
            "evidence": self.evidence,
        }


@dataclass
class HealthReport:
    """Every finding from one rule sweep over one rollup."""

    findings: List[Finding]
    rules_run: List[str]

    @property
    def status(self) -> str:
        """Worst severity across findings; ``ok`` when there are none."""
        worst = OK
        for finding in self.findings:
            if severity_rank(finding.severity) > severity_rank(worst):
                worst = finding.severity
        return worst

    @property
    def exit_code(self) -> int:
        """CLI convention: 0 ok, 1 warn, 2 critical."""
        return severity_rank(self.status)

    def findings_for(self, rule: str) -> List[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "rules_run": self.rules_run,
            "findings": [f.as_dict() for f in self.findings],
        }

    def summary(self) -> str:
        """Fixed-width text rendering (what ``repro health`` prints)."""
        lines = [f"status: {self.status.upper()}  ({len(self.findings)} findings)"]
        for finding in self.findings:
            where = finding.node or "-"
            if finding.rank is not None:
                where += f"/r{finding.rank}"
            lines.append(
                f"  [{finding.severity:<8s}] {finding.rule:<18s} "
                f"{where:<12s} {finding.message}"
            )
        return "\n".join(lines)


class HealthRule:
    """Base class: subclasses implement :meth:`evaluate`."""

    name = "rule"
    description = ""

    def evaluate(self, rollup: FleetRollup) -> List[Finding]:  # pragma: no cover
        raise NotImplementedError


class DedupRegressionRule(HealthRule):
    """A rank's dedup ratio collapsing versus its own trailing window.

    For each checkpoint past the warm-up window, compare its ratio with
    the mean of the previous *window* checkpoints: a drop past
    ``warn_drop`` (fraction of the trailing mean lost) warns, past
    ``critical_drop`` is critical.  The ratio sequence excludes nothing —
    the first (full) checkpoint anchors the window low, so organic
    ratio growth never trips the rule.
    """

    name = "dedup_regression"
    description = "per-rank dedup ratio vs trailing window"

    def __init__(
        self, window: int = 4, warn_drop: float = 0.5, critical_drop: float = 0.8
    ) -> None:
        self.window = window
        self.warn_drop = warn_drop
        self.critical_drop = critical_drop

    def evaluate(self, rollup: FleetRollup) -> List[Finding]:
        findings: List[Finding] = []
        for rank in rollup.ranks.values():
            ratios = rank.dedup_ratios
            worst: Optional[Finding] = None
            checkpoint_events = [
                e
                for e in rollup.events
                if e.get("type") == "checkpoint_committed"
                and e.get("node") == rank.node
                and e.get("rank") == rank.rank
            ]
            for i in range(self.window, len(ratios)):
                trailing = sum(ratios[i - self.window : i]) / self.window
                if trailing <= 0:
                    continue
                drop = 1.0 - ratios[i] / trailing
                severity = None
                if drop >= self.critical_drop:
                    severity = CRITICAL
                elif drop >= self.warn_drop:
                    severity = WARN
                if severity is None:
                    continue
                finding = Finding(
                    rule=self.name,
                    severity=severity,
                    message=(
                        f"dedup ratio fell to {ratios[i]:.2f}x "
                        f"({drop:.0%} below trailing-{self.window} mean "
                        f"{trailing:.2f}x) at checkpoint {i}"
                    ),
                    node=rank.node,
                    rank=rank.rank,
                    evidence=checkpoint_events[i : i + 1],
                )
                if worst is None or severity_rank(severity) > severity_rank(
                    worst.severity
                ):
                    worst = finding
            if worst is not None:
                findings.append(worst)
        return findings


class FlushBacklogRule(HealthRule):
    """Flush backlog growing without bound, or the app blocking on staging.

    The backlog of one checkpoint is ``persisted_at − produced_at``.  In
    the healthy regime it is flat (drain keeps up with the cadence); a
    final backlog ``warn_growth``× the initial one — sustained, i.e. the
    last value is also the max — means the hierarchy is falling behind.
    Any application blocking on host admission is itself a warn: the
    paper's §1 failure mode has arrived.
    """

    name = "flush_backlog"
    description = "flush backlog growth / host-admission stalls"

    def __init__(
        self,
        warn_growth: float = 3.0,
        critical_growth: float = 10.0,
        min_checkpoints: int = 4,
        min_backlog_seconds: float = 1e-6,
    ) -> None:
        self.warn_growth = warn_growth
        self.critical_growth = critical_growth
        self.min_checkpoints = min_checkpoints
        self.min_backlog_seconds = min_backlog_seconds

    def evaluate(self, rollup: FleetRollup) -> List[Finding]:
        findings: List[Finding] = []
        for rank in rollup.ranks.values():
            backlog = rank.backlog_seconds
            evidence = [
                e
                for e in rollup.events
                if e.get("type") == "checkpoint_committed"
                and e.get("node") == rank.node
                and e.get("rank") == rank.rank
            ]
            if len(backlog) >= self.min_checkpoints:
                base = backlog[0]
                last = backlog[-1]
                if (
                    base > self.min_backlog_seconds
                    and last >= max(backlog)
                    and last / base >= self.warn_growth
                ):
                    severity = (
                        CRITICAL if last / base >= self.critical_growth else WARN
                    )
                    findings.append(
                        Finding(
                            rule=self.name,
                            severity=severity,
                            message=(
                                f"flush backlog grew {last / base:.1f}x over "
                                f"{len(backlog)} checkpoints "
                                f"({base:.3g}s → {last:.3g}s)"
                            ),
                            node=rank.node,
                            rank=rank.rank,
                            evidence=evidence[-1:],
                        )
                    )
            if rank.blocked_seconds > 0:
                blocked_evidence = [
                    e for e in evidence if e.get("blocked_seconds", 0) > 0
                ]
                findings.append(
                    Finding(
                        rule=self.name,
                        severity=WARN,
                        message=(
                            f"application blocked {rank.blocked_seconds:.3g}s "
                            f"waiting for host staging admission"
                        ),
                        node=rank.node,
                        rank=rank.rank,
                        evidence=blocked_evidence[:5],
                    )
                )
        return findings


class CorruptionRule(HealthRule):
    """Salvage and injected-record-fault sentinels: always critical.

    A ``salvage`` event means stored bytes failed integrity checks and a
    load fell back to the longest valid prefix; a ``record_fault`` event
    is a fault injector's receipt.  One finding per event, so a campaign
    can check that *every* injected corruption was flagged.
    """

    name = "corruption"
    description = "salvaged loads and injected record faults"

    def evaluate(self, rollup: FleetRollup) -> List[Finding]:
        findings: List[Finding] = []
        for event in rollup.events_of(SALVAGE):
            findings.append(
                Finding(
                    rule=self.name,
                    severity=CRITICAL,
                    message=(
                        f"record {event.get('path', '?')} salvaged: first bad "
                        f"frame {event.get('first_bad')}, valid prefix "
                        f"{event.get('valid_prefix')} ({event.get('error', '?')})"
                    ),
                    node=event.get("node"),
                    rank=event.get("rank"),
                    evidence=[event],
                )
            )
        for event in rollup.events_of(RECORD_FAULT):
            findings.append(
                Finding(
                    rule=self.name,
                    severity=CRITICAL,
                    message=(
                        f"injected {event.get('kind', '?')} fault on "
                        f"{event.get('path', '?')}"
                    ),
                    node=event.get("node"),
                    rank=event.get("rank"),
                    evidence=[event],
                )
            )
        return findings


class CrashLoopRule(HealthRule):
    """Crashes per rank: any crash warns; loops and data loss are critical.

    ``loop_threshold`` crashes of the same rank is a crash loop; a cold
    restart (nothing durable to restore from — work is gone) is critical
    regardless of count.
    """

    name = "crash_loop"
    description = "crash counts and cold restarts per rank"

    def __init__(self, loop_threshold: int = 3) -> None:
        self.loop_threshold = loop_threshold

    def evaluate(self, rollup: FleetRollup) -> List[Finding]:
        findings: List[Finding] = []
        for rank in rollup.ranks.values():
            if rank.crashes == 0:
                continue
            evidence = [
                e
                for e in rollup.events
                if e.get("type") in (CRASH, RESTART)
                and e.get("node") == rank.node
                and e.get("rank") == rank.rank
            ]
            if rank.crashes >= self.loop_threshold:
                severity = CRITICAL
                message = (
                    f"crash loop: {rank.crashes} crashes "
                    f"(≥ {self.loop_threshold}), "
                    f"{rank.lost_work_seconds:.3g}s work lost"
                )
            elif rank.cold_restarts:
                severity = CRITICAL
                message = (
                    f"{rank.crashes} crash(es) including a cold restart: "
                    f"no durable checkpoint, {rank.lost_work_seconds:.3g}s lost"
                )
            else:
                severity = WARN
                message = (
                    f"{rank.crashes} crash(es), restored from durable "
                    f"checkpoints, {rank.lost_work_seconds:.3g}s work lost"
                )
            findings.append(
                Finding(
                    rule=self.name,
                    severity=severity,
                    message=message,
                    node=rank.node,
                    rank=rank.rank,
                    evidence=evidence[:10],
                )
            )
        return findings


class TierOutageRule(HealthRule):
    """Injected tier outages: transient warns, permanent is critical.

    Evidence bundles the outage event with that tier's retry and
    route-around events, so the finding shows both the cause and the
    degradation it produced.  Degraded flushes *without* a recorded
    outage (journals merged from a partial fleet) still warn.
    """

    name = "tier_outage"
    description = "tier outages with their retry/route-around fallout"

    def evaluate(self, rollup: FleetRollup) -> List[Finding]:
        findings: List[Finding] = []
        degraded = rollup.events_of(FLUSH_RETRY, FLUSH_ROUTE_AROUND)
        claimed = set()
        for event in rollup.tier_outages:
            tier = event.get("tier", "?")
            fallout = [e for e in degraded if e.get("tier") == tier]
            claimed.update(id(e) for e in fallout)
            permanent = event.get("kind") == "permanent"
            findings.append(
                Finding(
                    rule=self.name,
                    severity=CRITICAL if permanent else WARN,
                    message=(
                        f"{event.get('kind', '?')} outage of tier {tier!r} "
                        f"at t={event.get('sim_time') or 0.0:g}"
                        + (
                            ""
                            if permanent
                            else f" for {event.get('duration', 0.0):g}s"
                        )
                        + f"; {len(fallout)} degraded flush event(s)"
                    ),
                    node=event.get("node"),
                    rank=event.get("rank"),
                    evidence=[event] + fallout[:10],
                )
            )
        orphans = [e for e in degraded if id(e) not in claimed]
        if orphans:
            retries = sum(1 for e in orphans if e.get("type") == FLUSH_RETRY)
            routes = len(orphans) - retries
            findings.append(
                Finding(
                    rule=self.name,
                    severity=WARN,
                    message=(
                        f"degraded flushes without a recorded outage: "
                        f"{retries} retries, {routes} route-arounds"
                    ),
                    evidence=orphans[:10],
                )
            )
        return findings


class RestoreLagRule(HealthRule):
    """A restore's measured critical path far beyond its prediction.

    Sharded restores carry both the pre-execution cost-model prediction
    (the number the window auto-picker committed to) and the measured
    critical path.  A measured path ``warn_ratio``× the prediction means
    the model no longer describes the fleet — contention, placement, or
    storage changed under it — and the window choice is stale; past
    ``critical_ratio`` the restore SLO itself is at risk.  Events
    without both fields (single-GPU restores) are ignored, so clean
    runs stay clean.
    """

    name = "restore_lag"
    description = "restore critical path vs cost-model prediction"

    def __init__(
        self, warn_ratio: float = 2.0, critical_ratio: float = 4.0
    ) -> None:
        self.warn_ratio = warn_ratio
        self.critical_ratio = critical_ratio

    def evaluate(self, rollup: FleetRollup) -> List[Finding]:
        findings: List[Finding] = []
        for event in rollup.events_of(RESTORE):
            measured = float(event.get("critical_path_seconds", 0.0) or 0.0)
            predicted = float(event.get("predicted_seconds", 0.0) or 0.0)
            if measured <= 0 or predicted <= 0:
                continue
            ratio = measured / predicted
            if ratio < self.warn_ratio:
                continue
            severity = CRITICAL if ratio >= self.critical_ratio else WARN
            findings.append(
                Finding(
                    rule=self.name,
                    severity=severity,
                    message=(
                        f"restore of ckpt {event.get('target_ckpt', '?')} "
                        f"across {event.get('ranks', '?')} rank(s) took "
                        f"{measured:.3g}s vs predicted {predicted:.3g}s "
                        f"({ratio:.1f}x)"
                    ),
                    node=event.get("node"),
                    rank=event.get("rank"),
                    evidence=[event],
                )
            )
        return findings


class ReplayDivergenceRule(HealthRule):
    """A journal replay diverged from the recorded run: always critical.

    The replay subsystem (:mod:`repro.replay`) re-drives a recorded
    journal and emits one ``replay_divergence`` event per equivalence
    component that differs — durable-checkpoint set, restored bytes,
    health findings, or event counts.  Any such event means either the
    runtime is non-deterministic or the journal no longer describes what
    the system does: both are correctness emergencies.
    """

    name = "replay_divergence"
    description = "replayed run diverged from its recorded journal"

    def evaluate(self, rollup: FleetRollup) -> List[Finding]:
        findings: List[Finding] = []
        for event in rollup.events_of(REPLAY_DIVERGENCE):
            findings.append(
                Finding(
                    rule=self.name,
                    severity=CRITICAL,
                    message=(
                        f"replay of run {event.get('replay_of', '?')!r} "
                        f"diverged: {event.get('kind', '?')} — "
                        f"{event.get('detail', '?')}"
                    ),
                    node=event.get("node"),
                    rank=event.get("rank"),
                    evidence=[event],
                )
            )
        return findings


class WriteAmplificationRule(HealthRule):
    """Record appends writing far more bytes than they checkpoint.

    The append path is O(changed data): one frame, one index row-group,
    one manifest.  Summed over a run, ``bytes_written`` should track
    ``checkpoint_bytes`` closely; a fleet-wide ratio past ``warn_ratio``
    means the store is rewriting frames or rebuilding the index whole —
    the O(N)-append regression this PR's write path removed — and past
    ``critical_ratio`` the storage pipeline, not the kernels, is the
    bottleneck again.  Runs writing less than ``min_bytes`` total are
    ignored: tiny records are all fixed overhead (manifest JSON dwarfs a
    few-KB frame) and say nothing about the write path.
    """

    name = "write_amplification"
    description = "record-append bytes written vs checkpoint bytes"

    def __init__(
        self,
        warn_ratio: float = 4.0,
        critical_ratio: float = 16.0,
        min_bytes: int = 1 << 20,
    ) -> None:
        self.warn_ratio = warn_ratio
        self.critical_ratio = critical_ratio
        self.min_bytes = min_bytes

    def evaluate(self, rollup: FleetRollup) -> List[Finding]:
        appends = rollup.events_of(RECORD_APPENDED)
        if not appends:
            return []
        written = sum(int(e.get("bytes_written", 0) or 0) for e in appends)
        checkpointed = sum(
            int(e.get("checkpoint_bytes", 0) or 0) for e in appends
        )
        if written < self.min_bytes or checkpointed <= 0:
            return []
        ratio = written / checkpointed
        if ratio < self.warn_ratio:
            return []
        severity = CRITICAL if ratio >= self.critical_ratio else WARN
        worst = sorted(
            appends,
            key=lambda e: int(e.get("bytes_written", 0) or 0),
            reverse=True,
        )
        return [
            Finding(
                rule=self.name,
                severity=severity,
                message=(
                    f"write amplification {ratio:.1f}x across "
                    f"{len(appends)} append(s): {written} B written for "
                    f"{checkpointed} B of checkpoints"
                ),
                evidence=worst[:5],
            )
        ]


class PoolCandidateRule(HealthRule):
    """A record whose chunk bytes mostly already exist in other records.

    Reads the census rows (``attribution_summary`` events with scope
    ``census_record``, emitted by :class:`~repro.telemetry.attribution.
    ChunkCensus`): when a record's *cross-record duplicate share* — the
    fraction of its unique chunk bytes whose content other records also
    hold — passes ``warn_share``, standalone storage is leaving real
    dedup on the table and the record is a shared-pool candidate; past
    ``strong_share`` the record is mostly duplicate content and storing
    it outside the pool is mostly waste.  Purely advisory grading: it
    fires only when a census ran, so clean ORANGES runs stay at zero
    findings.
    """

    name = "pool_candidate"
    description = "cross-record duplicate share marks shared-pool candidates"

    def __init__(
        self, warn_share: float = 0.3, strong_share: float = 0.7
    ) -> None:
        self.warn_share = warn_share
        self.strong_share = strong_share

    def evaluate(self, rollup: FleetRollup) -> List[Finding]:
        rows = [
            e
            for e in rollup.events_of(ATTRIBUTION_SUMMARY)
            if e.get("scope") == "census_record"
        ]
        findings: List[Finding] = []
        for row in rows:
            share = float(row.get("cross_duplicate_share", 0.0) or 0.0)
            if share < self.warn_share:
                continue
            severity = CRITICAL if share >= self.strong_share else WARN
            findings.append(
                Finding(
                    rule=self.name,
                    severity=severity,
                    message=(
                        f"record {row.get('record', '?')}: {share:.0%} of its "
                        f"unique chunk bytes exist in other records "
                        f"(intra ×{float(row.get('intra_ratio', 0) or 0):.2f} "
                        f"→ pooled ×{float(row.get('pool_ratio', 0) or 0):.2f})"
                        f" — shared-pool candidate"
                    ),
                    node=row.get("node"),
                    rank=row.get("rank"),
                    evidence=[row],
                )
            )
        return findings


#: Which rules can flag each failure event type (see
#: :data:`repro.telemetry.events.FAILURE_EVENT_TYPES`).  The fuzzing
#: campaign and ``tests/telemetry/test_health.py`` assert this map is
#: total over the failure event set and that the listed rules actually
#: produce a finding carrying the event as evidence.
RULE_COVERAGE: Dict[str, List[str]] = {
    TIER_OUTAGE: [TierOutageRule.name],
    FLUSH_RETRY: [TierOutageRule.name],
    FLUSH_ROUTE_AROUND: [TierOutageRule.name],
    SALVAGE: [CorruptionRule.name],
    RECORD_FAULT: [CorruptionRule.name],
    CRASH: [CrashLoopRule.name],
    REPLAY_DIVERGENCE: [ReplayDivergenceRule.name],
}


def default_rules() -> List[HealthRule]:
    """A fresh instance of every built-in rule, default thresholds."""
    return [
        DedupRegressionRule(),
        FlushBacklogRule(),
        CorruptionRule(),
        CrashLoopRule(),
        TierOutageRule(),
        RestoreLagRule(),
        ReplayDivergenceRule(),
        WriteAmplificationRule(),
        PoolCandidateRule(),
    ]


def evaluate_health(
    source,
    rules: Optional[Sequence[HealthRule]] = None,
    metrics_snapshots: Sequence[Dict[str, Any]] = (),
) -> HealthReport:
    """Run the rule set over *source* and grade the outcome.

    *source* may be a :class:`FleetRollup`, an :class:`~repro.telemetry.
    events.EventJournal`, a record list, or an iterable of journals.
    """
    if isinstance(source, FleetRollup):
        rollup = source
    else:
        rollup = build_rollup(source, metrics_snapshots)
    ruleset = list(rules) if rules is not None else default_rules()
    findings: List[Finding] = []
    for rule in ruleset:
        findings.extend(rule.evaluate(rollup))
    findings.sort(key=lambda f: -severity_rank(f.severity))
    return HealthReport(findings=findings, rules_run=[r.name for r in ruleset])
