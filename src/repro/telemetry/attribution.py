"""Chunk-lineage attribution and the cross-record dedup census.

The paper's evaluation hangs on one number — deduplication ratio — but an
aggregate ratio explains nothing: *which* chunks earned it, where shifted
duplicates point, and how much more a shared cross-record pool would
recover all stay invisible.  This module builds that attribution plane:

* :func:`attribute_record` / :func:`attribute_diffs` decompose every
  checkpoint's logical bytes into **first / shift / fixed / zero** classes
  (plus the metadata overhead alongside), with per-chunk reference counts
  and lineage depth, derived purely from the RPIX provenance index — so a
  cold record on disk is attributable without replaying its chain.
* :class:`ChunkCensus` streams N records' chunk digests into one
  content-addressed frequency table and reports achieved-vs-attainable
  dedup (intra-record vs shared-pool), the top duplicated chunk families,
  and a fleet dedup forecast with p50/p99 per-record contribution.
* :func:`chunk_size_sweep` re-chunks the materialized checkpoints at
  alternative chunk sizes to price the dedup-vs-metadata tradeoff.

Imports of ``repro.core`` happen inside functions so the telemetry
package stays import-light and free of core↔telemetry cycles.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import events

#: Per-chunk class codes, ordered so ``CLASS_NAMES[code]`` names them.
CLASS_ZERO = 0
CLASS_FIRST = 1
CLASS_SHIFT = 2
CLASS_FIXED = 3
CLASS_NAMES = ("zero", "first", "shift", "fixed")

#: Byte classes an attribution decomposes logical bytes into (metadata is
#: reported alongside, not part of the logical-byte identity).
BYTE_CLASSES = ("first", "shift", "fixed", "zero")

_DIGEST_SIZE = 16


def _digest(data: bytes) -> bytes:
    return hashlib.blake2b(data, digest_size=_DIGEST_SIZE).digest()


# ----------------------------------------------------------------------
# Per-record byte attribution
# ----------------------------------------------------------------------
def classify_chunks(table, ckpt_id: int) -> np.ndarray:
    """Class code (:data:`CLASS_NAMES`) of every chunk of checkpoint *k*.

    Derived from the resolved provenance table alone: a chunk is *zero*
    when it has no source, *fixed* when its cell matches the previous
    checkpoint's, *first* when it is the lowest-numbered chunk owning a
    freshly written payload cell, and *shift* when it duplicates another
    cell (an owner in this checkpoint, or any older checkpoint's cell).
    """
    from ..core.provenance import ZERO_SOURCE

    ck = table.src_ckpt[ckpt_id].astype(np.int64)
    off = table.src_off[ckpt_id].astype(np.int64)
    zero = ck == ZERO_SOURCE
    if ckpt_id == 0:
        changed = ~zero
    else:
        changed = (ck != table.src_ckpt[ckpt_id - 1]) | (
            off != table.src_off[ckpt_id - 1]
        )
        changed &= ~zero
    classes = np.full(ck.shape[0], CLASS_FIXED, dtype=np.int8)
    classes[zero] = CLASS_ZERO
    classes[changed & (ck < ckpt_id)] = CLASS_SHIFT
    self_src = np.nonzero(changed & (ck == ckpt_id))[0]
    if self_src.size:
        # The lowest chunk id per distinct payload offset owns the cell
        # (first occurrence); every other chunk duplicates it (shift).
        order = np.argsort(off[self_src], kind="stable")
        sorted_offs = off[self_src][order]
        is_owner = np.ones(self_src.size, dtype=bool)
        is_owner[1:] = sorted_offs[1:] != sorted_offs[:-1]
        classes[self_src] = CLASS_SHIFT
        classes[self_src[order][is_owner]] = CLASS_FIRST
    return classes


@dataclass
class CheckpointAttribution:
    """Byte attribution of one checkpoint.

    ``first + shift + fixed + zero == data_len`` exactly — the classes
    partition the logical bytes; ``metadata_bytes``/``stored_bytes`` are
    the on-disk cost reported alongside.
    """

    ckpt_id: int
    data_len: int
    chunk_size: int
    first_bytes: int
    shift_bytes: int
    fixed_bytes: int
    zero_bytes: int
    metadata_bytes: int
    stored_bytes: int
    #: Restore-gather hop distance over this checkpoint's chunks.
    max_lineage_depth: int
    mean_lineage_depth: float
    #: Whole-table reference counts of this checkpoint's payload cells.
    max_ref_count: int
    mean_ref_count: float

    @property
    def class_bytes(self) -> Dict[str, int]:
        return {
            "first": self.first_bytes,
            "shift": self.shift_bytes,
            "fixed": self.fixed_bytes,
            "zero": self.zero_bytes,
        }

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ckpt_id": self.ckpt_id,
            "data_len": self.data_len,
            "first_bytes": self.first_bytes,
            "shift_bytes": self.shift_bytes,
            "fixed_bytes": self.fixed_bytes,
            "zero_bytes": self.zero_bytes,
            "metadata_bytes": self.metadata_bytes,
            "stored_bytes": self.stored_bytes,
            "max_lineage_depth": self.max_lineage_depth,
            "mean_lineage_depth": round(self.mean_lineage_depth, 4),
            "max_ref_count": self.max_ref_count,
            "mean_ref_count": round(self.mean_ref_count, 4),
        }


@dataclass
class RecordAttribution:
    """Attribution of a whole record: per-checkpoint rows + aggregates."""

    record: str
    method: Optional[str]
    data_len: int
    chunk_size: int
    checkpoints: List[CheckpointAttribution]
    #: Distinct payload cells the index references (the record's unique
    #: stored-chunk population).
    unique_cells: int
    #: Logical chunk references per unique cell (≥ 1; intra-record dedup).
    sharing_factor: float
    #: Lineage-depth histogram over every chunk of every checkpoint.
    depth_histogram: Counter = field(default_factory=Counter)

    @property
    def num_checkpoints(self) -> int:
        return len(self.checkpoints)

    @property
    def logical_bytes(self) -> int:
        return sum(c.data_len for c in self.checkpoints)

    @property
    def stored_bytes(self) -> int:
        return sum(c.stored_bytes for c in self.checkpoints)

    @property
    def totals(self) -> Dict[str, int]:
        out = {name: 0 for name in BYTE_CLASSES}
        out["metadata"] = 0
        for c in self.checkpoints:
            for name, nbytes in c.class_bytes.items():
                out[name] += nbytes
            out["metadata"] += c.metadata_bytes
        return out

    @property
    def achieved_ratio(self) -> Optional[float]:
        """Logical bytes per stored byte (None without stored sizes)."""
        return self.logical_bytes / self.stored_bytes if self.stored_bytes else None

    @property
    def max_lineage_depth(self) -> int:
        return max((c.max_lineage_depth for c in self.checkpoints), default=0)

    def as_dict(self) -> Dict[str, Any]:
        achieved = self.achieved_ratio
        return {
            "record": self.record,
            "method": self.method,
            "num_checkpoints": self.num_checkpoints,
            "data_len": self.data_len,
            "chunk_size": self.chunk_size,
            "logical_bytes": self.logical_bytes,
            "stored_bytes": self.stored_bytes,
            "achieved_ratio": None if achieved is None else round(achieved, 4),
            "unique_cells": self.unique_cells,
            "sharing_factor": round(self.sharing_factor, 4),
            "max_lineage_depth": self.max_lineage_depth,
            "totals": self.totals,
            "depth_histogram": {
                str(k): v for k, v in sorted(self.depth_histogram.items())
            },
            "checkpoints": [c.as_dict() for c in self.checkpoints],
        }

    def summary(self) -> str:
        """Human-readable per-checkpoint attribution table."""
        lines = [
            f"record {self.record}: {self.num_checkpoints} checkpoints × "
            f"{self.data_len:,d} B (chunk {self.chunk_size} B, "
            f"method {self.method or '?'})",
            f"{'ckpt':>4s} {'first%':>7s} {'shift%':>7s} {'fixed%':>7s} "
            f"{'zero%':>6s} {'meta':>8s} {'depth':>5s} {'refs':>5s} "
            f"{'stored':>10s}",
        ]
        for c in self.checkpoints:
            lines.append(
                f"{c.ckpt_id:>4d} "
                f"{100 * c.first_bytes / c.data_len:>6.1f}% "
                f"{100 * c.shift_bytes / c.data_len:>6.1f}% "
                f"{100 * c.fixed_bytes / c.data_len:>6.1f}% "
                f"{100 * c.zero_bytes / c.data_len:>5.1f}% "
                f"{c.metadata_bytes:>8,d} "
                f"{c.max_lineage_depth:>5d} "
                f"{c.max_ref_count:>5d} "
                f"{c.stored_bytes:>10,d}"
            )
        achieved = self.achieved_ratio
        lines.append(
            f"unique cells {self.unique_cells:,d}, sharing ×"
            f"{self.sharing_factor:.2f}, dedup "
            + ("n/a" if achieved is None else f"×{achieved:.2f}")
        )
        return "\n".join(lines)


def attribute_table(
    table,
    diffs: Optional[Sequence] = None,
    record: str = "record",
    emit: bool = True,
) -> RecordAttribution:
    """Attribute every checkpoint of a resolved provenance table.

    *diffs*, when available, supply the per-checkpoint metadata and
    stored-frame sizes; without them the byte classes are still exact
    (they come from the index alone) and the on-disk columns read 0.
    """
    from ..core.chunking import ChunkSpec
    from ..core.provenance import cell_reference_counts, lineage_depths

    spec = ChunkSpec(table.data_len, table.chunk_size)
    lengths = spec.lengths()
    depths = lineage_depths(table)
    refcounts, unique_cells = cell_reference_counts(table)

    checkpoints: List[CheckpointAttribution] = []
    depth_histogram: Counter = Counter()
    for k in range(table.num_checkpoints):
        classes = classify_chunks(table, k)
        class_bytes = {
            name: int(lengths[classes == code].sum())
            for code, name in enumerate(CLASS_NAMES)
        }
        row_depths = depths[k]
        row_refs = refcounts[k]
        nonzero = row_refs > 0
        diff = diffs[k] if diffs is not None else None
        checkpoints.append(
            CheckpointAttribution(
                ckpt_id=k,
                data_len=table.data_len,
                chunk_size=table.chunk_size,
                first_bytes=class_bytes["first"],
                shift_bytes=class_bytes["shift"],
                fixed_bytes=class_bytes["fixed"],
                zero_bytes=class_bytes["zero"],
                metadata_bytes=int(diff.metadata_bytes) if diff is not None else 0,
                stored_bytes=int(diff.serialized_size) if diff is not None else 0,
                max_lineage_depth=int(row_depths.max(initial=0)),
                mean_lineage_depth=float(row_depths.mean()) if row_depths.size else 0.0,
                max_ref_count=int(row_refs.max(initial=0)),
                mean_ref_count=(
                    float(row_refs[nonzero].mean()) if nonzero.any() else 0.0
                ),
            )
        )
        values, counts = np.unique(row_depths, return_counts=True)
        for v, n in zip(values, counts):
            depth_histogram[int(v)] += int(n)

    total_refs = int((refcounts > 0).sum())
    attribution = RecordAttribution(
        record=record,
        # The first frame of an incremental record is a full seed; the
        # last diff's method names the engine that produced the record.
        method=diffs[-1].method if diffs else None,
        data_len=table.data_len,
        chunk_size=table.chunk_size,
        checkpoints=checkpoints,
        unique_cells=unique_cells,
        sharing_factor=total_refs / unique_cells if unique_cells else 0.0,
        depth_histogram=depth_histogram,
    )
    if emit:
        totals = attribution.totals
        events.emit(
            events.ATTRIBUTION_SUMMARY,
            scope="record",
            record=record,
            method=attribution.method,
            num_checkpoints=attribution.num_checkpoints,
            data_len=table.data_len,
            chunk_size=table.chunk_size,
            logical_bytes=attribution.logical_bytes,
            stored_bytes=attribution.stored_bytes,
            first_bytes=totals["first"],
            shift_bytes=totals["shift"],
            fixed_bytes=totals["fixed"],
            zero_bytes=totals["zero"],
            metadata_bytes=totals["metadata"],
            unique_cells=unique_cells,
            sharing_factor=attribution.sharing_factor,
            max_lineage_depth=attribution.max_lineage_depth,
        )
    return attribution


def attribute_diffs(
    diffs: Sequence, record: str = "record", emit: bool = True
) -> RecordAttribution:
    """Attribute an in-memory diff chain (index composed on the fly)."""
    from ..core.provenance import ProvenanceTable

    return attribute_table(
        ProvenanceTable.from_diffs(diffs), diffs, record=record, emit=emit
    )


def attribute_record(
    directory, record: Optional[str] = None, emit: bool = True
) -> RecordAttribution:
    """Attribute a stored record.

    Uses the persisted RPIX index when present (frames are still read
    once for the metadata/stored-byte columns, but never replayed);
    records predating the index get one composed from their diffs.
    """
    import os

    from ..core.provenance import ProvenanceTable
    from ..core.store import load_provenance, load_record

    diffs = load_record(directory)
    table = load_provenance(directory)
    if table is None or table.num_checkpoints < len(diffs):
        table = ProvenanceTable.from_diffs(diffs)
    name = record if record is not None else os.path.basename(
        os.path.normpath(str(directory))
    )
    return attribute_table(table, diffs, record=name, emit=emit)


# ----------------------------------------------------------------------
# Cross-record census
# ----------------------------------------------------------------------
@dataclass
class CensusRecord:
    """One record's row in the census."""

    name: str
    chunk_size: int
    num_checkpoints: int
    logical_bytes: int
    stored_bytes: int
    unique_chunks: int
    unique_bytes: int

    @property
    def intra_ratio(self) -> float:
        """Attainable dedup keeping the record to itself."""
        return self.logical_bytes / self.unique_bytes if self.unique_bytes else 0.0

    @property
    def achieved_ratio(self) -> Optional[float]:
        return self.logical_bytes / self.stored_bytes if self.stored_bytes else None


@dataclass
class CensusReport:
    """Fleet-wide census results."""

    records: List[Dict[str, Any]]
    num_records: int
    total_logical_bytes: int
    total_stored_bytes: int
    pool_unique_chunks: int
    pool_unique_bytes: int
    #: Attainable fleet dedup with one shared pool.
    pool_forecast_ratio: float
    #: Best attainable dedup any single record reaches on its own.
    best_intra_ratio: float
    #: p50/p99 of the per-record pooled ratios (shared bytes charged
    #: evenly across the records containing them).
    record_pool_ratio_p50: float
    record_pool_ratio_p99: float
    top_families: List[Dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "num_records": self.num_records,
            "total_logical_bytes": self.total_logical_bytes,
            "total_stored_bytes": self.total_stored_bytes,
            "pool_unique_chunks": self.pool_unique_chunks,
            "pool_unique_bytes": self.pool_unique_bytes,
            "pool_forecast_ratio": round(self.pool_forecast_ratio, 4),
            "best_intra_ratio": round(self.best_intra_ratio, 4),
            "record_pool_ratio_p50": round(self.record_pool_ratio_p50, 4),
            "record_pool_ratio_p99": round(self.record_pool_ratio_p99, 4),
            "records": self.records,
            "top_families": self.top_families,
        }

    def summary(self) -> str:
        lines = [
            f"census: {self.num_records} records, "
            f"{self.total_logical_bytes:,d} logical B, pool of "
            f"{self.pool_unique_chunks:,d} unique chunks "
            f"({self.pool_unique_bytes:,d} B)",
            f"shared-pool forecast ×{self.pool_forecast_ratio:.2f} "
            f"(best single record ×{self.best_intra_ratio:.2f}; per-record "
            f"p50 ×{self.record_pool_ratio_p50:.2f}, "
            f"p99 ×{self.record_pool_ratio_p99:.2f})",
            f"{'record':<24s} {'ckpts':>5s} {'intra':>7s} {'pooled':>7s} "
            f"{'xdup%':>6s} {'unique':>12s}",
        ]
        for row in self.records:
            lines.append(
                f"{row['name']:<24s} {row['num_checkpoints']:>5d} "
                f"×{row['intra_ratio']:>5.2f} ×{row['pool_ratio']:>5.2f} "
                f"{100 * row['cross_duplicate_share']:>5.1f}% "
                f"{row['unique_bytes']:>12,d}"
            )
        if self.top_families:
            lines.append("top duplicated chunk families:")
            for fam in self.top_families:
                lines.append(
                    f"  {fam['digest']}… ×{fam['refs']} refs across "
                    f"{fam['records']} record(s), {fam['chunk_bytes']} B/chunk"
                )
        return "\n".join(lines)


class ChunkCensus:
    """Content-addressed chunk frequency table over many records.

    Records stream in one at a time (:meth:`add_record` /
    :meth:`add_diffs`); each contributes the digests of its *unique
    payload cells* — enumerated from the RPIX index, sliced straight out
    of stored payloads, never replayed — weighted by how many logical
    chunk slots reference them.  :meth:`report` then prices a shared
    cross-record pool against per-record dedup.
    """

    def __init__(self) -> None:
        #: digest → chunk byte length.
        self._chunk_bytes: Dict[bytes, int] = {}
        #: digest → logical references across the whole fleet.
        self._refs: Counter = Counter()
        #: digest → record names containing it.
        self._owners: Dict[bytes, set] = {}
        #: record name → digest → logical references within the record.
        self._record_refs: Dict[str, Dict[bytes, int]] = {}
        self.records: List[CensusRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    def add_diffs(self, name: str, diffs: Sequence) -> CensusRecord:
        """Ingest an in-memory diff chain."""
        from ..core.provenance import ProvenanceTable

        table = ProvenanceTable.from_diffs(diffs)
        payloads = {d.ckpt_id: np.frombuffer(d.payload, np.uint8) for d in diffs}
        stored = sum(int(d.serialized_size) for d in diffs)
        return self._ingest(name, table, payloads.__getitem__, stored)

    def add_record(
        self, directory, name: Optional[str] = None
    ) -> CensusRecord:
        """Ingest a stored record (index-driven, payloads sliced cold)."""
        import os

        from ..core.provenance import ProvenanceTable
        from ..core.store import load_provenance, load_record, record_frame_sizes

        diffs = load_record(directory)
        table = load_provenance(directory)
        if table is None or table.num_checkpoints < len(diffs):
            table = ProvenanceTable.from_diffs(diffs)
        payloads = {d.ckpt_id: np.frombuffer(d.payload, np.uint8) for d in diffs}
        stored = int(sum(record_frame_sizes(directory)))
        label = name if name is not None else os.path.basename(
            os.path.normpath(str(directory))
        )
        return self._ingest(label, table, payloads.__getitem__, stored)

    def _ingest(
        self,
        name: str,
        table,
        payload_of: Callable[[int], np.ndarray],
        stored_bytes: int,
    ) -> CensusRecord:
        from ..core.chunking import ChunkSpec
        from ..core.provenance import ZERO_SOURCE

        if name in self._record_refs:
            raise ValueError(f"census already holds a record named {name!r}")
        spec = ChunkSpec(table.data_len, table.chunk_size)
        lengths = spec.lengths()
        keys = np.empty(
            table.src_ckpt.size, dtype=[("c", "<i8"), ("o", "<i8"), ("l", "<i8")]
        )
        keys["c"] = table.src_ckpt.astype(np.int64).ravel()
        keys["o"] = table.src_off.astype(np.int64).ravel()
        keys["l"] = np.broadcast_to(lengths, table.src_ckpt.shape).ravel()
        uniq, counts = np.unique(keys, return_counts=True)

        rec_refs: Dict[bytes, int] = {}
        for i in range(uniq.shape[0]):
            src = int(uniq["c"][i])
            length = int(uniq["l"][i])
            if src == ZERO_SOURCE:
                data = bytes(length)
            else:
                off = int(uniq["o"][i])
                data = payload_of(src)[off : off + length].tobytes()
            digest = _digest(data)
            self._chunk_bytes.setdefault(digest, length)
            self._refs[digest] += int(counts[i])
            self._owners.setdefault(digest, set()).add(name)
            rec_refs[digest] = rec_refs.get(digest, 0) + int(counts[i])

        self._record_refs[name] = rec_refs
        record = CensusRecord(
            name=name,
            chunk_size=table.chunk_size,
            num_checkpoints=table.num_checkpoints,
            logical_bytes=table.num_checkpoints * table.data_len,
            stored_bytes=stored_bytes,
            unique_chunks=len(rec_refs),
            unique_bytes=sum(self._chunk_bytes[d] for d in rec_refs),
        )
        self.records.append(record)
        return record

    def report(self, top: int = 10, emit: bool = True) -> CensusReport:
        """Price the shared pool against per-record dedup."""
        if not self.records:
            raise ValueError("census holds no records")
        pool_unique_bytes = sum(self._chunk_bytes.values())
        total_logical = sum(r.logical_bytes for r in self.records)
        total_stored = sum(r.stored_bytes for r in self.records)
        pool_forecast = total_logical / pool_unique_bytes

        rows: List[Dict[str, Any]] = []
        pool_ratios: List[float] = []
        for rec in self.records:
            refs = self._record_refs[rec.name]
            shared_bytes = sum(
                self._chunk_bytes[d] for d in refs if len(self._owners[d]) > 1
            )
            # Shared chunks charged evenly across their owners, so the
            # per-record charges sum back to the pool's unique bytes.
            charged = sum(
                self._chunk_bytes[d] / len(self._owners[d]) for d in refs
            )
            pool_ratio = rec.logical_bytes / charged if charged else 0.0
            pool_ratios.append(pool_ratio)
            achieved = rec.achieved_ratio
            rows.append(
                {
                    "name": rec.name,
                    "chunk_size": rec.chunk_size,
                    "num_checkpoints": rec.num_checkpoints,
                    "logical_bytes": rec.logical_bytes,
                    "stored_bytes": rec.stored_bytes,
                    "unique_chunks": rec.unique_chunks,
                    "unique_bytes": rec.unique_bytes,
                    "intra_ratio": round(rec.intra_ratio, 4),
                    "achieved_ratio": (
                        None if achieved is None else round(achieved, 4)
                    ),
                    "pool_ratio": round(pool_ratio, 4),
                    "shared_bytes": shared_bytes,
                    "cross_duplicate_share": round(
                        shared_bytes / rec.unique_bytes if rec.unique_bytes else 0.0,
                        4,
                    ),
                }
            )

        families = [
            {
                "digest": digest.hex()[:12],
                "refs": int(refs),
                "records": len(self._owners[digest]),
                "chunk_bytes": self._chunk_bytes[digest],
            }
            for digest, refs in self._refs.most_common(top)
        ]
        report = CensusReport(
            records=rows,
            num_records=len(self.records),
            total_logical_bytes=total_logical,
            total_stored_bytes=total_stored,
            pool_unique_chunks=len(self._chunk_bytes),
            pool_unique_bytes=pool_unique_bytes,
            pool_forecast_ratio=pool_forecast,
            best_intra_ratio=max(r.intra_ratio for r in self.records),
            record_pool_ratio_p50=float(np.percentile(pool_ratios, 50)),
            record_pool_ratio_p99=float(np.percentile(pool_ratios, 99)),
            top_families=families,
        )
        if emit:
            for row in rows:
                events.emit(
                    events.ATTRIBUTION_SUMMARY,
                    scope="census_record",
                    record=row["name"],
                    num_checkpoints=row["num_checkpoints"],
                    logical_bytes=row["logical_bytes"],
                    unique_bytes=row["unique_bytes"],
                    shared_bytes=row["shared_bytes"],
                    cross_duplicate_share=row["cross_duplicate_share"],
                    intra_ratio=row["intra_ratio"],
                    pool_ratio=row["pool_ratio"],
                )
            events.emit(
                events.ATTRIBUTION_SUMMARY,
                scope="census",
                num_records=report.num_records,
                total_logical_bytes=total_logical,
                pool_unique_bytes=pool_unique_bytes,
                pool_forecast_ratio=round(pool_forecast, 4),
                best_intra_ratio=round(report.best_intra_ratio, 4),
                record_pool_ratio_p50=round(report.record_pool_ratio_p50, 4),
                record_pool_ratio_p99=round(report.record_pool_ratio_p99, 4),
            )
        return report


# ----------------------------------------------------------------------
# What-if chunk-size sweep
# ----------------------------------------------------------------------
@dataclass
class SweepPoint:
    """Dedup-vs-metadata pricing at one alternative chunk size."""

    chunk_size: int
    num_chunks: int
    unique_chunks: int
    unique_bytes: int
    #: Index cost at this granularity (12 B per chunk per checkpoint).
    metadata_bytes: int
    dedup_ratio: float
    #: Dedup net of index overhead — what the sweep actually prices.
    net_ratio: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "chunk_size": self.chunk_size,
            "num_chunks": self.num_chunks,
            "unique_chunks": self.unique_chunks,
            "unique_bytes": self.unique_bytes,
            "metadata_bytes": self.metadata_bytes,
            "dedup_ratio": round(self.dedup_ratio, 4),
            "net_ratio": round(self.net_ratio, 4),
        }


def chunk_size_sweep(
    diffs: Sequence, chunk_sizes: Sequence[int]
) -> List[SweepPoint]:
    """Re-chunk the record's checkpoints at alternative chunk sizes.

    Materializes each checkpoint once from cached payloads (index
    gathers, no chain replay), then digests it at every candidate size,
    pricing content-level dedup against the per-chunk index metadata.
    """
    from ..core.chunking import ChunkSpec
    from ..core.provenance import (
        RAW_INDEX_BYTES_PER_CHUNK,
        ProvenanceTable,
        materialize_index,
    )

    if not chunk_sizes:
        raise ValueError("chunk_size_sweep needs at least one chunk size")
    table = ProvenanceTable.from_diffs(diffs)
    payloads = {d.ckpt_id: np.frombuffer(d.payload, np.uint8) for d in diffs}
    states = [
        materialize_index(table.row(k), payloads.__getitem__, h2d=False)
        for k in range(table.num_checkpoints)
    ]
    logical = table.num_checkpoints * table.data_len

    points: List[SweepPoint] = []
    for size in chunk_sizes:
        spec = ChunkSpec(table.data_len, int(size))
        seen: Dict[bytes, int] = {}
        for state in states:
            view = memoryview(state.tobytes())
            for c in range(spec.num_chunks):
                b0, b1 = spec.chunk_bounds(c)
                seen.setdefault(_digest(bytes(view[b0:b1])), b1 - b0)
        unique_bytes = sum(seen.values())
        metadata = (
            table.num_checkpoints * spec.num_chunks * RAW_INDEX_BYTES_PER_CHUNK
        )
        points.append(
            SweepPoint(
                chunk_size=int(size),
                num_chunks=spec.num_chunks,
                unique_chunks=len(seen),
                unique_bytes=unique_bytes,
                metadata_bytes=metadata,
                dedup_ratio=logical / unique_bytes if unique_bytes else 0.0,
                net_ratio=(
                    logical / (unique_bytes + metadata)
                    if unique_bytes + metadata
                    else 0.0
                ),
            )
        )
    return points


def sweep_report(points: Sequence[SweepPoint]) -> str:
    """Human-readable sweep table."""
    lines = [
        f"{'chunk':>7s} {'chunks':>8s} {'unique':>8s} {'dedup':>7s} "
        f"{'meta':>12s} {'net':>7s}"
    ]
    for p in points:
        lines.append(
            f"{p.chunk_size:>7d} {p.num_chunks:>8,d} {p.unique_chunks:>8,d} "
            f"×{p.dedup_ratio:>5.2f} {p.metadata_bytes:>12,d} "
            f"×{p.net_ratio:>5.2f}"
        )
    return "\n".join(lines)
