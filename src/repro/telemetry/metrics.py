"""Counters, gauges, and histograms with no-op behavior when disabled.

Instruments are registered once (typically at module import of the code
they instrument) in a :class:`MetricsRegistry` and then mutated freely
from the hot path.  Every mutation checks the shared telemetry flag first
and returns immediately when collection is off, so an instrumented call
site costs one attribute read plus a predictable branch when disabled.

Values are exported by :mod:`repro.telemetry.export` as a Prometheus-style
text page or a flat JSON dict.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Optional, Sequence, Tuple, Union

from ._state import STATE

#: Default histogram boundaries: half-decade-free powers of ten wide enough
#: to bucket both seconds (1e-7 …) and byte counts (… 1e7+).
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(10.0 ** e for e in range(-7, 8))


class Counter:
    """Monotonically increasing count (events, bytes, probes)."""

    kind = "counter"
    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: Union[int, float] = 1) -> None:
        if not STATE.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Union[int, float]:
        return self._value

    def reset(self) -> None:
        self._value = 0

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self._value}


class Gauge:
    """Point-in-time value (queue depth, load factor, buffers held)."""

    kind = "gauge"
    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: Union[int, float]) -> None:
        if not STATE.enabled:
            return
        with self._lock:
            self._value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        if not STATE.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> Union[int, float]:
        return self._value

    def reset(self) -> None:
        self._value = 0.0

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self._value}


class Histogram:
    """Distribution of observed values with fixed cumulative buckets."""

    kind = "histogram"
    __slots__ = (
        "name",
        "help",
        "buckets",
        "_bucket_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(tuple(buckets)):
            raise ValueError(f"histogram {name!r} buckets must be sorted and unique")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        # One slot per finite bucket plus the +Inf overflow slot.
        self._bucket_counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: Union[int, float]) -> None:
        if not STATE.enabled:
            return
        value = float(value)
        slot = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._bucket_counts[slot] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def reset(self) -> None:
        self._bucket_counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def cumulative_buckets(self) -> Dict[str, int]:
        """Prometheus-style cumulative ``le`` → count mapping."""
        out: Dict[str, int] = {}
        running = 0
        for boundary, n in zip(self.buckets, self._bucket_counts):
            running += n
            out[repr(boundary)] = running
        out["+Inf"] = self._count
        return out

    @classmethod
    def from_values(
        cls,
        name: str,
        values: Sequence[Union[int, float]],
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> "Histogram":
        """Build a histogram from raw observations, ignoring the global switch.

        Live instruments gate :meth:`observe` on the shared telemetry
        flag; offline aggregation (windowed SLO quantiles over journal
        events) must work whether or not collection is on, so this
        constructor fills the buckets directly.
        """
        hist = cls(name, help, buckets=buckets)
        for value in values:
            value = float(value)
            hist._bucket_counts[bisect.bisect_left(hist.buckets, value)] += 1
            hist._count += 1
            hist._sum += value
            if value < hist._min:
                hist._min = value
            if value > hist._max:
                hist._max = value
        return hist

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the *q*-quantile from the cumulative buckets.

        Linear interpolation inside the bucket holding the target rank —
        the standard Prometheus ``histogram_quantile`` estimator — with
        two refinements the tracked extrema allow: the result is clamped
        to the observed ``[min, max]`` range, and a rank falling in the
        ``+Inf`` overflow bucket returns the observed maximum instead of
        an unbounded edge.  Returns ``None`` on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return None
        target = q * self._count
        running = 0
        for i, n in enumerate(self._bucket_counts):
            if n == 0:
                continue
            if running + n >= target:
                if i >= len(self.buckets):
                    return self._max  # the +Inf overflow bucket
                hi = self.buckets[i]
                lo = self.buckets[i - 1] if i > 0 else min(self._min, hi)
                fraction = (target - running) / n
                estimate = lo + (hi - lo) * max(0.0, min(1.0, fraction))
                return max(self._min, min(self._max, estimate))
            running += n
        return self._max

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "buckets": self.cumulative_buckets(),
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments; create-or-fetch keeps registration idempotent."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, cls, name: str, help: str, **kwargs) -> Instrument:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name, help, **kwargs)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {inst.kind}, "
                    f"cannot re-register as {cls.kind}"
                )
            return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._instruments))

    def snapshot(self) -> Dict[str, dict]:
        """Name → value snapshot of every instrument, sorted by name."""
        with self._lock:
            instruments = list(self._instruments.items())
        return {name: inst.snapshot() for name, inst in sorted(instruments)}

    def reset(self) -> None:
        """Zero every instrument, keeping registrations intact."""
        with self._lock:
            instruments = list(self._instruments.values())
        for inst in instruments:
            inst.reset()


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry all built-in instrumentation uses."""
    return _DEFAULT_REGISTRY


def counter(name: str, help: str = "") -> Counter:
    """Create-or-fetch a counter on the default registry."""
    return _DEFAULT_REGISTRY.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    """Create-or-fetch a gauge on the default registry."""
    return _DEFAULT_REGISTRY.gauge(name, help)


def histogram(
    name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
) -> Histogram:
    """Create-or-fetch a histogram on the default registry."""
    return _DEFAULT_REGISTRY.histogram(name, help, buckets)
