"""Structured event journal: the fleet-level "what happened" stream.

Spans and metrics (PR 4) answer *how long* and *how much*; the journal
answers *what happened*: an append-only stream of schema-versioned JSON
records — checkpoint committed, flush retry, tier outage, salvage,
crash/restart, restore, rebase — each tagged with the node/rank that
emitted it and both clocks (wall time and the simulated timeline).
Journals from N ranks merge order-independently (see
:mod:`repro.telemetry.aggregate`), feed the health engine
(:mod:`repro.telemetry.health`), and render as an HTML run report
(:mod:`repro.telemetry.report`).

Journaling is **off by default** and independent of the span/metric
switch: nothing is recorded until a journal is installed with
:func:`install` / :func:`journal_to` (or ``REPRO_JOURNAL=<path>`` in the
environment).  When no journal is installed, :func:`emit` is a single
``None`` check, and checkpoint bytes are identical either way (golden
tests in ``tests/telemetry/test_events.py``).

Record envelope (schema version 1)::

    {"schema": 1, "seq": 3, "type": "checkpoint_committed",
     "node": "node0", "rank": 1, "wall_time": 1754..., "sim_time": 0.82,
     ...event-specific fields...}

``seq`` is a per-journal monotonic counter; ``(node, rank, seq)`` orders
records from one emitter even when ``sim_time`` ties or is absent.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from ..errors import StorageError

#: Journal record schema version; bump on incompatible envelope changes.
SCHEMA_VERSION = 1

# ----------------------------------------------------------------------
# Event types
# ----------------------------------------------------------------------
CHECKPOINT_COMMITTED = "checkpoint_committed"
FLUSH_RETRY = "flush_retry"
FLUSH_ROUTE_AROUND = "flush_route_around"
TIER_OUTAGE = "tier_outage"
SALVAGE = "salvage"
RECORD_FAULT = "record_fault"
CRASH = "crash"
RESTART = "restart"
RESTORE = "restore"
REBASE = "rebase"

EVENT_TYPES = frozenset(
    {
        CHECKPOINT_COMMITTED,
        FLUSH_RETRY,
        FLUSH_ROUTE_AROUND,
        TIER_OUTAGE,
        SALVAGE,
        RECORD_FAULT,
        CRASH,
        RESTART,
        RESTORE,
        REBASE,
    }
)

#: Envelope keys; payload fields may not collide with them.
_ENVELOPE = frozenset({"schema", "seq", "type", "node", "rank", "wall_time", "sim_time"})


class EventJournal:
    """Append-only journal of structured events from one emitter.

    Parameters
    ----------
    path:
        Optional JSONL file to stream records into (appended, flushed per
        record so a crashed process leaves a readable prefix).  ``None``
        keeps records in memory only.
    node / rank:
        Identity stamped on every record unless overridden per ``emit``.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        node: str = "node0",
        rank: Optional[int] = None,
    ) -> None:
        self.node = node
        self.rank = rank
        self.path = Path(path) if path is not None else None
        self._records: List[Dict[str, Any]] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._fh = open(self.path, "a") if self.path is not None else None

    def emit(
        self,
        type: str,
        sim_time: Optional[float] = None,
        node: Optional[str] = None,
        rank: Optional[int] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Append one event; returns the record dict."""
        if type not in EVENT_TYPES:
            raise ValueError(f"unknown event type {type!r}")
        clash = _ENVELOPE.intersection(fields)
        if clash:
            raise ValueError(f"payload fields shadow the envelope: {sorted(clash)}")
        record: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "type": type,
            "node": node if node is not None else self.node,
            "rank": rank if rank is not None else self.rank,
            "wall_time": time.time(),
            "sim_time": None if sim_time is None else float(sim_time),
        }
        record.update(fields)
        with self._lock:
            record["seq"] = self._seq
            self._seq += 1
            self._records.append(record)
            if self._fh is not None:
                self._fh.write(json.dumps(record, sort_keys=True) + "\n")
                self._fh.flush()
        return record

    def records(self) -> List[Dict[str, Any]]:
        """Snapshot of everything emitted so far."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def write(self, path: Union[str, Path]) -> Path:
        """Dump the in-memory records as a JSONL file."""
        return write_journal(path, self.records())

    def close(self) -> None:
        """Close the streaming file handle (records stay readable)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = str(self.path) if self.path else "memory"
        return f"<EventJournal {self.node}/{self.rank} {len(self)} events → {where}>"


# ----------------------------------------------------------------------
# Module-level sink (what the instrumented call sites talk to)
# ----------------------------------------------------------------------
_ACTIVE: Optional[EventJournal] = None


def active_journal() -> Optional[EventJournal]:
    """The currently installed journal, or ``None`` (journaling off)."""
    return _ACTIVE


def install(journal: EventJournal) -> EventJournal:
    """Make *journal* the process-wide event sink."""
    global _ACTIVE
    _ACTIVE = journal
    return journal


def uninstall() -> Optional[EventJournal]:
    """Stop journaling; returns the journal that was active."""
    global _ACTIVE
    prev, _ACTIVE = _ACTIVE, None
    return prev


def emit(type: str, **kwargs: Any) -> Optional[Dict[str, Any]]:
    """Emit to the installed journal; a no-op ``None`` when journaling is off."""
    journal = _ACTIVE
    if journal is None:
        return None
    return journal.emit(type, **kwargs)


@contextmanager
def journal_to(
    path: Optional[Union[str, Path]] = None,
    node: str = "node0",
    rank: Optional[int] = None,
) -> Iterator[EventJournal]:
    """Install a fresh journal for one block, restoring the prior sink.

    >>> with journal_to("run.jsonl", node="node3") as journal:
    ...     ...                       # instrumented code emits here
    >>> len(journal.records())        # doctest: +SKIP
    """
    global _ACTIVE
    journal = EventJournal(path, node=node, rank=rank)
    prev = _ACTIVE
    _ACTIVE = journal
    try:
        yield journal
    finally:
        _ACTIVE = prev
        journal.close()


# ----------------------------------------------------------------------
# Persistence and ordering
# ----------------------------------------------------------------------
def write_journal(path: Union[str, Path], records: Iterable[Dict[str, Any]]) -> Path:
    """Write an iterable of event records as a JSONL journal file."""
    out = Path(path)
    with open(out, "w") as f:
        for record in records:
            f.write(json.dumps(record, sort_keys=True) + "\n")
    return out


def read_journal(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load one JSONL journal, validating the envelope of every record."""
    source = Path(path)
    if not source.exists():
        raise StorageError(f"no journal at {source}")
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(source.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise StorageError(f"{source}:{lineno}: malformed journal line: {exc}") from exc
        if not isinstance(record, dict) or "type" not in record:
            raise StorageError(f"{source}:{lineno}: journal record has no event type")
        version = record.get("schema")
        if not isinstance(version, int) or version > SCHEMA_VERSION:
            raise StorageError(
                f"{source}:{lineno}: unsupported journal schema {version!r}"
            )
        records.append(record)
    return records


def merge_key(record: Dict[str, Any]):
    """Total order over journal records, independent of arrival order.

    Records sort by simulated time first (events without one sort ahead,
    in emitter order), then by emitter identity ``(node, rank, seq)``.  A
    canonical JSON dump breaks any remaining tie, so merging the same
    record multisets in any order yields the same sequence.
    """
    sim = record.get("sim_time")
    rank = record.get("rank")
    return (
        0 if sim is None else 1,
        float(sim) if sim is not None else 0.0,
        str(record.get("node", "")),
        int(rank) if rank is not None else -1,
        int(record.get("seq", 0)),
        json.dumps(record, sort_keys=True, default=str),
    )


# Opt-in streaming journal from the environment: REPRO_JOURNAL=<path>
# (node identity via REPRO_NODE).  Mirrors REPRO_TELEMETRY's spirit —
# nothing happens unless explicitly requested.
_env_path = os.environ.get("REPRO_JOURNAL", "")
if _env_path:
    install(EventJournal(_env_path, node=os.environ.get("REPRO_NODE", "node0")))
del _env_path
