"""Structured event journal: the fleet-level "what happened" stream.

Spans and metrics (PR 4) answer *how long* and *how much*; the journal
answers *what happened*: an append-only stream of schema-versioned JSON
records — checkpoint committed, flush retry, tier outage, salvage,
crash/restart, restore, rebase — each tagged with the node/rank that
emitted it and both clocks (wall time and the simulated timeline).
Journals from N ranks merge order-independently (see
:mod:`repro.telemetry.aggregate`), feed the health engine
(:mod:`repro.telemetry.health`), and render as an HTML run report
(:mod:`repro.telemetry.report`).

Journaling is **off by default** and independent of the span/metric
switch: nothing is recorded until a journal is installed with
:func:`install` / :func:`journal_to` (or ``REPRO_JOURNAL=<path>`` in the
environment).  When no journal is installed, :func:`emit` is a single
``None`` check, and checkpoint bytes are identical either way (golden
tests in ``tests/telemetry/test_events.py``).

Record envelope (schema version 2)::

    {"schema": 2, "seq": 3, "type": "checkpoint_committed",
     "run_id": "fleet-0", "node": "node0", "rank": 1,
     "wall_time": 1754..., "sim_time": 0.82,
     ...event-specific fields...}

``seq`` is a per-journal monotonic counter; ``(node, rank, seq)`` orders
records from one emitter even when ``sim_time`` ties or is absent.
``run_id`` (new in schema v2) names the run the record belongs to, so
journals from *different* runs can no longer be silently conflated by a
merge: :func:`repro.telemetry.aggregate.merge_journals` and the replay
subsystem (:mod:`repro.replay`) both refuse mixed ``run_id`` streams.
Schema v1 records (no ``run_id``) still load; their run id reads as
``None``, which merges compatibly with anything.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from ..errors import StorageError

#: Journal record schema version; bump on incompatible envelope changes.
#: v2 adds the ``run_id`` envelope field (v1 records still load).
SCHEMA_VERSION = 2

# ----------------------------------------------------------------------
# Event types
# ----------------------------------------------------------------------
CHECKPOINT_COMMITTED = "checkpoint_committed"
FLUSH_RETRY = "flush_retry"
FLUSH_ROUTE_AROUND = "flush_route_around"
TIER_OUTAGE = "tier_outage"
SALVAGE = "salvage"
RECORD_FAULT = "record_fault"
CRASH = "crash"
RESTART = "restart"
RESTORE = "restore"
REBASE = "rebase"
RECORD_APPENDED = "record_appended"
RUN_CONFIG = "run_config"
REPLAY_DIVERGENCE = "replay_divergence"
HEARTBEAT = "heartbeat"
ATTRIBUTION_SUMMARY = "attribution_summary"

EVENT_TYPES = frozenset(
    {
        CHECKPOINT_COMMITTED,
        FLUSH_RETRY,
        FLUSH_ROUTE_AROUND,
        TIER_OUTAGE,
        SALVAGE,
        RECORD_FAULT,
        CRASH,
        RESTART,
        RESTORE,
        REBASE,
        RECORD_APPENDED,
        RUN_CONFIG,
        REPLAY_DIVERGENCE,
        HEARTBEAT,
        ATTRIBUTION_SUMMARY,
    }
)

#: Event types that record something going *wrong* (as opposed to normal
#: progress like a committed checkpoint or a completed restore).  The
#: health engine guarantees every one of these maps to at least one rule
#: — see :data:`repro.telemetry.health.RULE_COVERAGE` and the coverage
#: test in ``tests/telemetry/test_health.py``.
FAILURE_EVENT_TYPES = frozenset(
    {
        FLUSH_RETRY,
        FLUSH_ROUTE_AROUND,
        TIER_OUTAGE,
        SALVAGE,
        RECORD_FAULT,
        CRASH,
        REPLAY_DIVERGENCE,
    }
)

#: Envelope keys; payload fields may not collide with them.
_ENVELOPE = frozenset(
    {"schema", "seq", "type", "run_id", "node", "rank", "wall_time", "sim_time"}
)


class EventJournal:
    """Append-only journal of structured events from one emitter.

    Parameters
    ----------
    path:
        Optional JSONL file to stream records into (appended, flushed per
        record so a crashed process leaves a readable prefix).  ``None``
        keeps records in memory only.
    node / rank:
        Identity stamped on every record unless overridden per ``emit``.
    run_id:
        Optional run identity stamped on every record (schema v2).  Leave
        ``None`` for ad-hoc journals; recorded runs meant for replay or
        cross-run merging should set a stable, deterministic id.
    retain:
        Keep every emitted record in memory (the default).  ``False``
        builds and returns records without retaining them — the envelope
        for pure pass-through sinks like the in-process event bus, which
        must not grow without bound over a long-lived run.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        node: str = "node0",
        rank: Optional[int] = None,
        run_id: Optional[str] = None,
        retain: bool = True,
    ) -> None:
        self.node = node
        self.rank = rank
        self.run_id = run_id
        self.retain = retain
        self.path = Path(path) if path is not None else None
        self._records: List[Dict[str, Any]] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._fh = open(self.path, "a") if self.path is not None else None

    def emit(
        self,
        type: str,
        sim_time: Optional[float] = None,
        node: Optional[str] = None,
        rank: Optional[int] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Append one event; returns the record dict."""
        if type not in EVENT_TYPES:
            raise ValueError(f"unknown event type {type!r}")
        clash = _ENVELOPE.intersection(fields)
        if clash:
            raise ValueError(f"payload fields shadow the envelope: {sorted(clash)}")
        record: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "type": type,
            "run_id": self.run_id,
            "node": node if node is not None else self.node,
            "rank": rank if rank is not None else self.rank,
            "wall_time": time.time(),
            "sim_time": None if sim_time is None else float(sim_time),
        }
        record.update(fields)
        with self._lock:
            record["seq"] = self._seq
            self._seq += 1
            if self.retain:
                self._records.append(record)
            if self._fh is not None:
                self._fh.write(json.dumps(record, sort_keys=True) + "\n")
                self._fh.flush()
        return record

    def records(self) -> List[Dict[str, Any]]:
        """Snapshot of everything emitted so far."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def write(self, path: Union[str, Path]) -> Path:
        """Dump the in-memory records as a JSONL file."""
        return write_journal(path, self.records())

    def close(self) -> None:
        """Close the streaming file handle (records stay readable)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = str(self.path) if self.path else "memory"
        return f"<EventJournal {self.node}/{self.rank} {len(self)} events → {where}>"


# ----------------------------------------------------------------------
# Module-level sink (what the instrumented call sites talk to)
# ----------------------------------------------------------------------
_ACTIVE: Optional[EventJournal] = None

# In-process event bus: subscribers see every record that flows through
# the module-level :func:`emit` — with or without a journal installed —
# so a live aggregator (``repro.telemetry.live``) can consume the event
# stream without touching disk.  A failing subscriber never breaks the
# emitting pipeline: its exception is counted and the record still
# reaches the journal and the other subscribers.
_SUBSCRIBERS: List[Any] = []
#: Records emitted while no journal is installed still need an envelope
#: (seq, node identity) for the bus; this non-retaining journal builds it.
_BUS_FALLBACK: Optional[EventJournal] = None
#: Subscriber callbacks that raised, counted so monitoring failures are
#: visible without ever propagating into the checkpoint pipeline.
subscriber_errors: int = 0


def subscribe(callback) -> Any:
    """Register *callback* to receive every emitted record; returns it."""
    _SUBSCRIBERS.append(callback)
    return callback


def unsubscribe(callback) -> None:
    """Remove a previously subscribed callback (no-op if absent)."""
    try:
        _SUBSCRIBERS.remove(callback)
    except ValueError:
        pass


def _notify(record: Dict[str, Any]) -> None:
    global subscriber_errors
    for callback in list(_SUBSCRIBERS):
        try:
            callback(record)
        except Exception:
            subscriber_errors += 1


def reset_bus() -> None:
    """Drop every subscriber and zero the bus state (test isolation)."""
    global _BUS_FALLBACK, subscriber_errors
    _SUBSCRIBERS.clear()
    _BUS_FALLBACK = None
    subscriber_errors = 0


def active_journal() -> Optional[EventJournal]:
    """The currently installed journal, or ``None`` (journaling off)."""
    return _ACTIVE


def install(journal: EventJournal) -> EventJournal:
    """Make *journal* the process-wide event sink."""
    global _ACTIVE
    _ACTIVE = journal
    return journal


def uninstall() -> Optional[EventJournal]:
    """Stop journaling; returns the journal that was active."""
    global _ACTIVE
    prev, _ACTIVE = _ACTIVE, None
    return prev


def emit(type: str, **kwargs: Any) -> Optional[Dict[str, Any]]:
    """Emit to the installed journal and the event bus.

    A no-op ``None`` when journaling is off *and* nobody is subscribed —
    the disabled cost stays two reads and a branch.  With subscribers but
    no journal, the record is built (non-retained) and delivered to the
    bus only, so a live aggregator can ride along without any disk I/O.
    """
    global _BUS_FALLBACK
    journal = _ACTIVE
    if journal is None and not _SUBSCRIBERS:
        return None
    if journal is None:
        if _BUS_FALLBACK is None:
            _BUS_FALLBACK = EventJournal(
                node=os.environ.get("REPRO_NODE", "node0"), retain=False
            )
        journal = _BUS_FALLBACK
    record = journal.emit(type, **kwargs)
    if _SUBSCRIBERS:
        _notify(record)
    return record


@contextmanager
def journal_to(
    path: Optional[Union[str, Path]] = None,
    node: str = "node0",
    rank: Optional[int] = None,
    run_id: Optional[str] = None,
) -> Iterator[EventJournal]:
    """Install a fresh journal for one block, restoring the prior sink.

    >>> with journal_to("run.jsonl", node="node3") as journal:
    ...     ...                       # instrumented code emits here
    >>> len(journal.records())        # doctest: +SKIP
    """
    global _ACTIVE
    journal = EventJournal(path, node=node, rank=rank, run_id=run_id)
    prev = _ACTIVE
    _ACTIVE = journal
    try:
        yield journal
    finally:
        _ACTIVE = prev
        journal.close()


# ----------------------------------------------------------------------
# Persistence and ordering
# ----------------------------------------------------------------------
def write_journal(path: Union[str, Path], records: Iterable[Dict[str, Any]]) -> Path:
    """Write an iterable of event records as a JSONL journal file."""
    out = Path(path)
    with open(out, "w") as f:
        for record in records:
            f.write(json.dumps(record, sort_keys=True) + "\n")
    return out


class JournalCursor:
    """Resume point of an incremental journal read.

    ``offset`` is the byte position of the first unconsumed byte;
    ``lineno`` the 1-based line number that byte starts.  Cursors are
    immutable value objects: each :func:`read_journal` call returns a new
    one on ``LoadedJournal.cursor``, and feeding it back via ``since=``
    parses only what was appended after it — tailing never re-parses the
    prefix.
    """

    __slots__ = ("offset", "lineno")

    def __init__(self, offset: int = 0, lineno: int = 1) -> None:
        self.offset = int(offset)
        self.lineno = int(lineno)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, JournalCursor)
            and self.offset == other.offset
            and self.lineno == other.lineno
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JournalCursor(offset={self.offset}, lineno={self.lineno})"


class LoadedJournal(List[Dict[str, Any]]):
    """A journal's records plus what had to be skipped to load them.

    Behaves exactly like the record list :func:`read_journal` has always
    returned, with damage accounting attached: ``skipped_lines`` counts
    truncated/garbled/unreadable JSONL lines that were dropped, and
    ``problems`` describes the first few.  A journal cut off mid-record
    by the very crash it documents must still load — the replayer depends
    on it.  ``cursor`` marks where this load stopped; pass it back as
    ``read_journal(..., since=cursor)`` to consume only newer records.
    """

    def __init__(self, records=(), path: Optional[Path] = None) -> None:
        super().__init__(records)
        self.path = path
        self.skipped_lines: int = 0
        self.problems: List[str] = []
        self.cursor: JournalCursor = JournalCursor()


def read_journal(
    path: Union[str, Path],
    strict: bool = False,
    since: Optional[JournalCursor] = None,
) -> LoadedJournal:
    """Load one JSONL journal, validating the envelope of every record.

    By default damaged lines — truncated JSON (a crash mid-write),
    garbled bytes, records with no event type, or an unsupported schema
    version — are *skipped and counted* on the returned
    :class:`LoadedJournal` (``skipped_lines`` / ``problems``) instead of
    aborting the load mid-file.  ``strict=True`` restores the raising
    behaviour for tests and for pipelines that must not tolerate damage.

    ``since`` switches to **incremental** mode: reading starts at the
    cursor (nothing before it is re-parsed) and a torn trailing line —
    bytes not yet closed by a newline, i.e. a record the emitter is
    mid-``write`` — is *held back* instead of parsed: the returned
    ``cursor`` stops in front of it, so the next poll consumes the line
    intact once the writer finishes it.  Start tailing from
    ``JournalCursor()``.  A file that shrank below the cursor (rotated
    or truncated underneath the tailer) restarts from the beginning and
    is counted as a problem.  Whole-file loads (``since=None``) keep the
    historical behaviour — the final line parses even without a trailing
    newline — and return a cursor at end-of-file.
    """
    source = Path(path)
    if not source.exists():
        raise StorageError(f"no journal at {source}")
    records = LoadedJournal(path=source)
    incremental = since is not None
    start = since if since is not None else JournalCursor()

    def _skip(lineno: int, why: str, exc: Optional[Exception] = None) -> None:
        if strict:
            message = f"{source}:{lineno}: {why}"
            raise StorageError(message) from exc
        records.skipped_lines += 1
        if len(records.problems) < 8:
            records.problems.append(f"line {lineno}: {why}")

    data = source.read_bytes()
    if start.offset > len(data):
        _skip(
            start.lineno,
            f"journal shrank below cursor offset {start.offset} "
            f"(rotated or truncated); restarting from the beginning",
        )
        start = JournalCursor()
    chunk = data[start.offset :]
    if incremental and chunk and not chunk.endswith(b"\n"):
        # Hold back the torn trailing line: everything up to and
        # including the last newline is consumable now, the tail is the
        # next poll's problem (by then the writer has flushed the rest).
        chunk = chunk[: chunk.rfind(b"\n") + 1]
    lines = chunk.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()  # a trailing newline terminates a line, not starts one
    for i, line in enumerate(lines):
        lineno = start.lineno + i
        text = line.decode("utf-8", errors="replace")
        if not text.strip():
            continue
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            _skip(lineno, f"malformed journal line: {exc}", exc)
            continue
        if not isinstance(record, dict) or "type" not in record:
            _skip(lineno, "journal record has no event type")
            continue
        version = record.get("schema")
        if not isinstance(version, int) or version > SCHEMA_VERSION:
            _skip(lineno, f"unsupported journal schema {version!r}")
            continue
        records.append(record)
    records.cursor = JournalCursor(
        offset=start.offset + len(chunk) if incremental else len(data),
        lineno=start.lineno + len(lines),
    )
    return records


def journal_run_ids(records: Iterable[Dict[str, Any]]) -> List[str]:
    """Distinct non-``None`` ``run_id`` values in *records*, sorted.

    Schema v1 records (and v2 records from ad-hoc journals) carry no run
    identity and are compatible with any run; only *conflicting* ids —
    two or more distinct non-``None`` values — indicate journals from
    different runs being conflated.
    """
    ids = {r.get("run_id") for r in records}
    ids.discard(None)
    return sorted(ids)


def merge_key(record: Dict[str, Any]):
    """Total order over journal records, independent of arrival order.

    Records sort by simulated time first (events without one sort ahead,
    in emitter order), then by emitter identity ``(node, rank, seq)``.  A
    canonical JSON dump breaks any remaining tie, so merging the same
    record multisets in any order yields the same sequence.
    """
    sim = record.get("sim_time")
    rank = record.get("rank")
    return (
        0 if sim is None else 1,
        float(sim) if sim is not None else 0.0,
        str(record.get("node", "")),
        int(rank) if rank is not None else -1,
        int(record.get("seq", 0)),
        json.dumps(record, sort_keys=True, default=str),
    )


# Opt-in streaming journal from the environment: REPRO_JOURNAL=<path>
# (node identity via REPRO_NODE).  Mirrors REPRO_TELEMETRY's spirit —
# nothing happens unless explicitly requested.
_env_path = os.environ.get("REPRO_JOURNAL", "")
if _env_path:
    install(EventJournal(_env_path, node=os.environ.get("REPRO_NODE", "node0")))
del _env_path
