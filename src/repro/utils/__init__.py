"""Shared utilities: units, timing, validation, deterministic RNG streams."""

from .rng import seeded_rng, spawn_streams
from .timing import PhaseTimer, Stopwatch
from .units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    TB,
    TIB,
    format_bytes,
    format_rate,
    format_ratio,
    parse_bytes,
)
from .validation import (
    fraction,
    non_negative_int,
    one_of,
    optional_positive_int,
    positive_float,
    positive_int,
    power_of_two,
    require,
    same_length,
)

__all__ = [
    "seeded_rng",
    "spawn_streams",
    "PhaseTimer",
    "Stopwatch",
    "KB", "MB", "GB", "TB", "KIB", "MIB", "GIB", "TIB",
    "format_bytes", "format_rate", "format_ratio", "parse_bytes",
    "fraction", "non_negative_int", "one_of", "optional_positive_int",
    "positive_float", "positive_int", "power_of_two", "require", "same_length",
]
