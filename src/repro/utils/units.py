"""Byte- and rate-unit helpers used across the library and bench harness.

The simulator and bench harness constantly move between raw byte counts,
human-readable sizes (``"4.21 GB"`` in Table 1 of the paper) and bandwidth
figures (``GB/s``).  Keeping the conversions in one place avoids the classic
1000-vs-1024 confusion: the paper (like most storage literature) reports
decimal units, so :func:`format_bytes` is decimal by default while the
binary helpers are available explicitly.
"""

from __future__ import annotations

from ..errors import ConfigurationError

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30
TIB = 1 << 40

_DECIMAL_STEPS = [(TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")]
_BINARY_STEPS = [(TIB, "TiB"), (GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")]

_SUFFIXES = {
    "b": 1,
    "kb": KB, "mb": MB, "gb": GB, "tb": TB,
    "kib": KIB, "mib": MIB, "gib": GIB, "tib": TIB,
}


def format_bytes(n: float, binary: bool = False, precision: int = 2) -> str:
    """Render a byte count as a human-readable string.

    >>> format_bytes(4_210_000_000)
    '4.21 GB'
    >>> format_bytes(512)
    '512 B'
    """
    if n < 0:
        raise ConfigurationError(f"byte count must be non-negative, got {n}")
    steps = _BINARY_STEPS if binary else _DECIMAL_STEPS
    for factor, suffix in steps:
        if n >= factor:
            return f"{n / factor:.{precision}f} {suffix}"
    return f"{n:.0f} B"


def parse_bytes(text: str) -> int:
    """Parse a human-readable size such as ``"64 KB"`` or ``"1.5GiB"``.

    >>> parse_bytes("64 KB")
    64000
    >>> parse_bytes("512")
    512
    """
    s = text.strip().lower()
    for suffix in sorted(_SUFFIXES, key=len, reverse=True):
        if s.endswith(suffix):
            number = s[: -len(suffix)].strip()
            try:
                return int(float(number) * _SUFFIXES[suffix])
            except ValueError as exc:
                raise ConfigurationError(f"cannot parse size {text!r}") from exc
    try:
        return int(float(s))
    except ValueError as exc:
        raise ConfigurationError(f"cannot parse size {text!r}") from exc


def format_rate(bytes_per_second: float, precision: int = 2) -> str:
    """Render a bandwidth as e.g. ``"25.00 GB/s"``."""
    return f"{format_bytes(bytes_per_second, precision=precision)}/s"


def format_ratio(ratio: float, precision: int = 2) -> str:
    """Render a de-duplication ratio as e.g. ``"215.00x"``."""
    return f"{ratio:.{precision}f}x"
