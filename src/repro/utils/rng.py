"""Deterministic random-number streams.

Everything stochastic in the library (graph generators, synthetic update
patterns, workload jitter) draws from :func:`seeded_rng` so that a single
integer seed reproduces an entire experiment, including multi-process
scaling runs where each simulated rank gets an independent child stream
via :func:`spawn_streams`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .validation import non_negative_int, positive_int

DEFAULT_SEED = 0x1C9923  # "ICPP23" in spirit; any fixed constant works.


def seeded_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Return a PCG64 generator seeded deterministically.

    ``None`` maps to :data:`DEFAULT_SEED`, *not* to OS entropy: experiments
    must be reproducible by default, and callers who want fresh entropy can
    pass ``np.random.default_rng()`` wherever a generator is accepted.
    """
    if seed is None:
        seed = DEFAULT_SEED
    non_negative_int(seed, "seed")
    return np.random.default_rng(seed)


def spawn_streams(n: int, seed: Optional[int] = None) -> List[np.random.Generator]:
    """Return *n* statistically-independent generators from one seed.

    Used by the scaling driver to give each simulated GPU process its own
    stream, so run-to-run results do not depend on process scheduling.
    """
    positive_int(n, "n")
    if seed is None:
        seed = DEFAULT_SEED
    non_negative_int(seed, "seed")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
