"""Small argument-validation helpers.

These keep constructor bodies readable: each helper raises
:class:`~repro.errors.ConfigurationError` with a message naming the
offending parameter, which is what the test-suite asserts on.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, TypeVar

from ..errors import ConfigurationError

T = TypeVar("T")


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with *message* unless *condition*."""
    if not condition:
        raise ConfigurationError(message)


def positive_int(value: int, name: str) -> int:
    """Validate that *value* is a positive integer and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    return value


def non_negative_int(value: int, name: str) -> int:
    """Validate that *value* is a non-negative integer and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool) or value < 0:
        raise ConfigurationError(f"{name} must be a non-negative integer, got {value!r}")
    return value


def positive_float(value: float, name: str) -> float:
    """Validate that *value* is a positive finite number and return it as float."""
    try:
        out = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from None
    if not out > 0 or out != out or out == float("inf"):
        raise ConfigurationError(f"{name} must be positive and finite, got {value!r}")
    return out


def fraction(value: float, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    try:
        out = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from None
    if not (0.0 <= out <= 1.0):
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return out


def power_of_two(value: int, name: str) -> int:
    """Validate that *value* is a positive power of two and return it."""
    positive_int(value, name)
    if value & (value - 1):
        raise ConfigurationError(f"{name} must be a power of two, got {value}")
    return value


def one_of(value: T, allowed: Sequence[T], name: str) -> T:
    """Validate that *value* is one of *allowed* and return it."""
    if value not in allowed:
        raise ConfigurationError(
            f"{name} must be one of {list(allowed)!r}, got {value!r}"
        )
    return value


def same_length(name_a: str, a: Iterable, name_b: str, b: Iterable) -> None:
    """Validate that two sized iterables have equal length."""
    la, lb = len(list(a) if not hasattr(a, "__len__") else a), len(
        list(b) if not hasattr(b, "__len__") else b
    )
    if la != lb:
        raise ConfigurationError(f"{name_a} (len {la}) and {name_b} (len {lb}) must match")


def optional_positive_int(value: Optional[int], name: str) -> Optional[int]:
    """Validate that *value* is ``None`` or a positive integer."""
    if value is None:
        return None
    return positive_int(value, name)
