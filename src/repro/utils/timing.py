"""Wall-clock timing utilities.

The library reports two distinct kinds of time:

* **simulated time** — produced by :mod:`repro.gpusim`'s cost model; this is
  what the paper-style throughput figures are computed from, and

* **wall-clock time** — how long the pure-Python data path actually took,
  useful for profiling and recorded alongside simulated results so the
  substitution stays honest.

This module covers the wall-clock side with a small stopwatch and a
hierarchical phase timer used by the bench harness.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class Stopwatch:
    """A resumable stopwatch accumulating elapsed seconds.

    >>> sw = Stopwatch()
    >>> with sw.running():
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _started_at: float = field(default=0.0, repr=False)
    _running: bool = field(default=False, repr=False)

    def start(self) -> None:
        """Start (or resume) the stopwatch; idempotent while running."""
        if not self._running:
            self._started_at = time.perf_counter()
            self._running = True

    def stop(self) -> float:
        """Stop the stopwatch and return total accumulated seconds."""
        if self._running:
            self.elapsed += time.perf_counter() - self._started_at
            self._running = False
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulator and stop."""
        self.elapsed = 0.0
        self._running = False

    @contextmanager
    def running(self) -> Iterator["Stopwatch"]:
        """Context manager that runs the stopwatch for the block's duration."""
        self.start()
        try:
            yield self
        finally:
            self.stop()


class PhaseTimer:
    """Accumulates wall-clock time per named phase.

    Used by the dedup engines to attribute time to ``hash-leaves``,
    ``build-tree``, ``serialize`` etc.  Phases may repeat; their durations
    accumulate.  Nesting is allowed and attributed independently.
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._order: List[str] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block under *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Accumulate an externally measured duration under *name*.

        This is the sink the telemetry spans feed, so phase wall-clock
        accounting has one accumulator whether a block was timed by
        :meth:`phase` directly or by a :func:`repro.telemetry.span`.
        """
        if name not in self._totals:
            self._totals[name] = 0.0
            self._counts[name] = 0
            self._order.append(name)
        self._totals[name] += seconds
        self._counts[name] += count

    def total(self, name: str) -> float:
        """Total seconds accumulated under *name* (0.0 if never timed)."""
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        """How many times *name* was entered."""
        return self._counts.get(name, 0)

    @property
    def grand_total(self) -> float:
        """Sum of all top-level phase durations."""
        return sum(self._totals.values())

    def as_dict(self) -> Dict[str, float]:
        """Phase-name → seconds, in first-use order."""
        return {name: self._totals[name] for name in self._order}

    def report(self) -> str:
        """Multi-line human-readable report, longest phase first."""
        lines = ["phase timing:"]
        for name in sorted(self._order, key=lambda n: -self._totals[n]):
            lines.append(
                f"  {name:<24s} {self._totals[name] * 1e3:10.3f} ms"
                f"  ({self._counts[name]}x)"
            )
        return "\n".join(lines)
