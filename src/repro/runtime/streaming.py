"""Streaming de-duplication — the paper's §5 future-work item.

"Streaming methods that overlap de-duplication with transfers to the host
memory": instead of de-duplicating the whole checkpoint and then issuing
one D2H copy, the checkpoint is processed in windows and window *i*'s
transfer overlaps window *i+1*'s device work.

The data path is unchanged (windows are a scheduling construct); what
changes is the simulated timeline.  :class:`StreamingScheduler` re-prices
a checkpoint's cost breakdown under a W-window software pipeline:

* device time and transfer time are split evenly across windows (the
  dedup passes are data-parallel, so this is the natural decomposition);
* the makespan is the classic 2-stage pipeline bound —
  ``stage1 + stage2 + (W-1) * max(stage1, stage2) / W``-style overlap —
* per-window transfer latency is charged per copy, so over-fine windows
  lose their benefit to DMA setup cost (the trade-off the paper would
  face in practice).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..gpusim.device import DeviceSpec
from ..gpusim.perfmodel import CostBreakdown
from ..utils.validation import positive_int
from .. import telemetry

_ESTIMATES = telemetry.counter(
    "streaming.estimates", "Window-pipeline re-pricings performed"
)


@dataclass(frozen=True)
class StreamingEstimate:
    """Simulated timings of one checkpoint under a window pipeline."""

    windows: int
    serial_seconds: float
    streamed_seconds: float

    @property
    def speedup(self) -> float:
        """Serial end-to-end time over pipelined time."""
        if self.streamed_seconds <= 0:
            return float("inf")
        return self.serial_seconds / self.streamed_seconds


class StreamingScheduler:
    """Re-prices checkpoint costs under dedup/transfer overlap."""

    def __init__(self, device: DeviceSpec, windows: int = 4) -> None:
        positive_int(windows, "windows")
        self.device = device
        self.windows = windows

    def estimate_stages(
        self,
        stage1_seconds: float,
        stage2_seconds: float,
        per_window_overhead: float = 0.0,
    ) -> StreamingEstimate:
        """Direction-agnostic window estimate over two FIFO stages.

        Stage 1 of window *w* runs concurrently with stage 2 of window
        *w-1*.  On the checkpoint side stage 1 is device dedup and
        stage 2 the D2H drain; on the restore side stage 1 is the shared
        PFS frame read and stage 2 the sharded gather + H2D upload.  The
        pipeline shape is identical — only the stage meanings differ, so
        this estimate carries no checkpoint-side assumptions.

        *per_window_overhead* is charged to stage 2 once per window past
        the first (the serial timeline already pays it once) — DMA setup
        on either direction — so over-fine windows lose their benefit.
        """
        w = self.windows
        stage1 = stage1_seconds / w
        stage2 = (stage2_seconds + (w - 1) * per_window_overhead) / w

        # 2-stage pipeline makespan with per-window FIFO stages.
        stage1_done = 0.0
        stage2_done = 0.0
        for _ in range(w):
            stage1_done += stage1
            stage2_done = max(stage2_done, stage1_done) + stage2
        est = StreamingEstimate(
            windows=w,
            serial_seconds=stage1_seconds + stage2_seconds,
            streamed_seconds=stage2_done,
        )
        _ESTIMATES.inc()
        telemetry.instant(
            "streaming.estimate",
            windows=w,
            serial_seconds=est.serial_seconds,
            streamed_seconds=est.streamed_seconds,
        )
        return est

    def estimate(self, cost: CostBreakdown) -> StreamingEstimate:
        """Pipeline a checkpoint whose serial cost is *cost*.

        The device stage of window *w* runs concurrently with the transfer
        stage of window *w-1*; both stages are FIFO.  Extra per-window DMA
        setup (``pcie_latency`` per additional copy) is charged against
        the transfer stage.
        """
        return self.estimate_stages(
            cost.kernel_seconds,
            cost.transfer_seconds,
            per_window_overhead=self.device.pcie_latency,
        )

    def best_window_count(
        self, cost: CostBreakdown, candidates: List[int] = (1, 2, 4, 8, 16, 32)
    ) -> StreamingEstimate:
        """Pick the candidate window count minimising the makespan."""
        return self.best_window_count_stages(
            cost.kernel_seconds,
            cost.transfer_seconds,
            per_window_overhead=self.device.pcie_latency,
            candidates=candidates,
        )

    def best_window_count_stages(
        self,
        stage1_seconds: float,
        stage2_seconds: float,
        per_window_overhead: float = 0.0,
        candidates: List[int] = (1, 2, 4, 8, 16, 32),
    ) -> StreamingEstimate:
        """Direction-agnostic :meth:`best_window_count` over raw stages."""
        best = None
        for w in candidates:
            est = StreamingScheduler(self.device, w).estimate_stages(
                stage1_seconds, stage2_seconds, per_window_overhead
            )
            if best is None or est.streamed_seconds < best.streamed_seconds:
                best = est
        return best
