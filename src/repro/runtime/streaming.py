"""Streaming de-duplication — the paper's §5 future-work item.

"Streaming methods that overlap de-duplication with transfers to the host
memory": instead of de-duplicating the whole checkpoint and then issuing
one D2H copy, the checkpoint is processed in windows and window *i*'s
transfer overlaps window *i+1*'s device work.

The data path is unchanged (windows are a scheduling construct); what
changes is the simulated timeline.  :class:`StreamingScheduler` re-prices
a checkpoint's cost breakdown under a W-window software pipeline:

* device time and transfer time are split evenly across windows (the
  dedup passes are data-parallel, so this is the natural decomposition);
* the makespan is the classic 2-stage pipeline bound —
  ``stage1 + stage2 + (W-1) * max(stage1, stage2) / W``-style overlap —
* per-window transfer latency is charged per copy, so over-fine windows
  lose their benefit to DMA setup cost (the trade-off the paper would
  face in practice).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..gpusim.device import DeviceSpec
from ..gpusim.perfmodel import CostBreakdown
from ..utils.validation import positive_int
from .. import telemetry

_ESTIMATES = telemetry.counter(
    "streaming.estimates", "Window-pipeline re-pricings performed"
)


@dataclass(frozen=True)
class StreamingEstimate:
    """Simulated timings of one checkpoint under a window pipeline."""

    windows: int
    serial_seconds: float
    streamed_seconds: float

    @property
    def speedup(self) -> float:
        """Serial end-to-end time over pipelined time."""
        if self.streamed_seconds <= 0:
            return float("inf")
        return self.serial_seconds / self.streamed_seconds


class StreamingScheduler:
    """Re-prices checkpoint costs under dedup/transfer overlap."""

    def __init__(self, device: DeviceSpec, windows: int = 4) -> None:
        positive_int(windows, "windows")
        self.device = device
        self.windows = windows

    def estimate(self, cost: CostBreakdown) -> StreamingEstimate:
        """Pipeline a checkpoint whose serial cost is *cost*.

        The device stage of window *w* runs concurrently with the transfer
        stage of window *w-1*; both stages are FIFO.  Extra per-window DMA
        setup (``pcie_latency`` per additional copy) is charged against
        the transfer stage.
        """
        w = self.windows
        device_stage = cost.kernel_seconds / w
        # The serial breakdown already includes one pcie_latency; each
        # additional window pays one more.
        extra_latency = (w - 1) * self.device.pcie_latency
        transfer_stage = (cost.transfer_seconds + extra_latency) / w

        # 2-stage pipeline makespan with per-window FIFO stages.
        device_done = 0.0
        transfer_done = 0.0
        for _ in range(w):
            device_done += device_stage
            transfer_done = max(transfer_done, device_done) + transfer_stage
        est = StreamingEstimate(
            windows=w,
            serial_seconds=cost.total_seconds,
            streamed_seconds=transfer_done,
        )
        _ESTIMATES.inc()
        telemetry.instant(
            "streaming.estimate",
            windows=w,
            serial_seconds=est.serial_seconds,
            streamed_seconds=est.streamed_seconds,
        )
        return est

    def best_window_count(
        self, cost: CostBreakdown, candidates: List[int] = (1, 2, 4, 8, 16, 32)
    ) -> StreamingEstimate:
        """Pick the candidate window count minimising the makespan."""
        best = None
        for w in candidates:
            est = StreamingScheduler(self.device, w).estimate(cost)
            if best is None or est.streamed_seconds < best.streamed_seconds:
                best = est
        return best
