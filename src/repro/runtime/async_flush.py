"""Asynchronous multi-level flush pipeline (the VeloC-style runtime, §2.3).

After the on-GPU de-duplication produces a consolidated diff in host
memory, the application resumes immediately; a background runtime drains
the diff down the hierarchy (host → SSD → PFS).  The application only
*blocks* when the host staging buffer cannot admit a new diff — the
failure mode the paper warns about at high checkpoint frequency with
full-size checkpoints (§1).

The pipeline is a small discrete-event simulation: each tier's drain link
is FIFO; an object occupies a tier from its arrival until it has fully
drained into the next one.  All times are simulated seconds on the same
clock as the GPU cost model, so a bench can run an entire checkpoint
cadence and report end-to-end I/O overhead.

Degradation under injected faults (see ``docs/FAULT_MODEL.md``):

* A **transient** drain outage on a tier makes attempts fail; the
  pipeline retries with exponential backoff on the simulated clock and
  records the retries and the accumulated wait in the
  :class:`FlushReport`.
* A **permanently** failed *middle* tier is routed around: the object is
  written through from the upstream tier directly into the next live
  tier (host→PFS write-through when the SSD dies), at the upstream
  tier's drain bandwidth.  A dead terminal tier — or a dead host — is
  unrecoverable and raises :class:`~repro.errors.StorageError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import StorageError
from ..utils.validation import non_negative_int, positive_float
from .. import telemetry
from ..telemetry import events
from .storage import StorageTier, default_hierarchy

_RETRIES = telemetry.counter(
    "flush.retries", "Drain attempts that hit a transient tier outage"
)
_ROUTE_AROUNDS = telemetry.counter(
    "flush.route_arounds", "Dead middle tiers skipped by write-through"
)
_BLOCKED = telemetry.histogram(
    "flush.blocked_seconds", "Application stall per submission (simulated)"
)


@dataclass
class FlushReport:
    """Timeline of one checkpoint object through the hierarchy."""

    key: str
    nbytes: int
    #: When the application handed the object to the runtime.
    submitted_at: float
    #: Seconds the application was blocked waiting for host space.
    blocked_seconds: float
    #: Arrival time at each tier, tier name → simulated seconds.
    arrived: Dict[str, float] = field(default_factory=dict)
    #: Drain attempts that hit a transient tier outage and backed off.
    retries: int = 0
    #: Simulated seconds spent backing off before successful drains.
    retry_wait_seconds: float = 0.0
    #: Permanently failed tiers this object was routed around.
    skipped_tiers: List[str] = field(default_factory=list)

    @property
    def persisted_at(self) -> float:
        """When the object reached the terminal tier."""
        return max(self.arrived.values())

    @property
    def end_to_end_seconds(self) -> float:
        """Submission → durably persisted."""
        return self.persisted_at - self.submitted_at

    @property
    def degraded(self) -> bool:
        """Whether any fault shaped this object's path or timing."""
        return self.retries > 0 or bool(self.skipped_tiers)


class AsyncFlushPipeline:
    """FIFO multi-tier flusher with blocking host admission.

    Parameters
    ----------
    tiers:
        Ordered hierarchy, fastest first; defaults to
        :func:`~repro.runtime.storage.default_hierarchy`.
    retry_base_seconds / max_retries:
        Exponential-backoff schedule for transient drain outages: the
        k-th retry waits ``retry_base_seconds * 2**(k-1)`` simulated
        seconds; after *max_retries* failed attempts on one link the
        flush gives up with :class:`StorageError`.
    persist:
        Optional durability hook called with each completed
        :class:`FlushReport` once the object has reached the terminal
        tier — the moment the runtime would commit it into a stored
        record.  :class:`~repro.runtime.node.NodeRuntime` uses this to
        route every flushed checkpoint through a
        :class:`~repro.core.store.RecordWriter`.
    """

    def __init__(
        self,
        tiers: Optional[Sequence[StorageTier]] = None,
        retry_base_seconds: float = 0.25,
        max_retries: int = 16,
        persist: Optional[Callable[[FlushReport], None]] = None,
    ) -> None:
        self.tiers: List[StorageTier] = (
            list(tiers) if tiers is not None else default_hierarchy()
        )
        if len(self.tiers) < 2:
            raise StorageError("a flush hierarchy needs at least two tiers")
        positive_float(retry_base_seconds, "retry_base_seconds")
        self.retry_base_seconds = retry_base_seconds
        self.max_retries = max_retries
        self.persist = persist
        self.reports: List[FlushReport] = []
        #: Pending evictions: (free_time, tier_index, key, nbytes).
        self._departures: List[tuple] = []

    # ------------------------------------------------------------------
    def _drain_departures(self, now: float) -> None:
        """Apply all evictions that completed by *now*."""
        remaining = []
        for free_time, tier_idx, key, nbytes in self._departures:
            if free_time <= now:
                self.tiers[tier_idx].remove(key)
            else:
                remaining.append((free_time, tier_idx, key, nbytes))
        self._departures = remaining

    def _earliest_host_space(self, nbytes: int) -> float:
        """Earliest simulated time the host tier can admit *nbytes*."""
        host = self.tiers[0]
        if host.fits(nbytes):
            return 0.0
        # Replay pending departures from the host tier in time order.
        freed = 0
        for free_time, tier_idx, _key, obj_bytes in sorted(self._departures):
            if tier_idx != 0:
                continue
            freed += obj_bytes
            if host.free_bytes + freed >= nbytes:
                return free_time
        raise StorageError(
            f"checkpoint of {nbytes} bytes can never fit the host tier "
            f"({self.tiers[0].capacity_bytes} bytes)"
        )

    def _next_live_tier(self, src_idx: int, at: float, report: FlushReport) -> int:
        """First non-dead tier index after *src_idx*; records skips.

        Raises :class:`StorageError` when every downstream tier —
        including the terminal one — is dead, because then the object can
        never become durable.
        """
        for idx in range(src_idx + 1, len(self.tiers)):
            tier = self.tiers[idx]
            if not tier.is_dead(at):
                return idx
            if tier.name not in report.skipped_tiers:
                report.skipped_tiers.append(tier.name)
                _ROUTE_AROUNDS.inc()
                telemetry.instant(
                    "flush.route_around", key=report.key, tier=tier.name, sim_at=at
                )
                events.emit(
                    events.FLUSH_ROUTE_AROUND,
                    sim_time=at,
                    key=report.key,
                    tier=tier.name,
                )
        raise StorageError(
            f"no live tier downstream of {self.tiers[src_idx].name} at "
            f"t={at:g}: checkpoint {report.key!r} cannot be persisted"
        )

    def _backoff_through_outage(
        self, src: StorageTier, start: float, report: FlushReport
    ) -> float:
        """Retry a faulted drain link until it comes back; returns the
        time the transfer can actually start."""
        attempt = 0
        while True:
            blocked_until = src.drain_blocked_until(start)
            if blocked_until is None:
                return start
            if blocked_until == float("inf"):
                raise StorageError(
                    f"tier {src.name} failed permanently at t={start:g} with "
                    f"checkpoint {report.key!r} still resident"
                )
            attempt += 1
            if attempt > self.max_retries:
                raise StorageError(
                    f"drain from tier {src.name} still failing after "
                    f"{self.max_retries} retries (checkpoint {report.key!r})"
                )
            wait = self.retry_base_seconds * 2 ** (attempt - 1)
            report.retries += 1
            report.retry_wait_seconds += wait
            _RETRIES.inc()
            telemetry.instant(
                "flush.retry",
                key=report.key,
                tier=src.name,
                attempt=attempt,
                wait_seconds=wait,
            )
            events.emit(
                events.FLUSH_RETRY,
                sim_time=start,
                key=report.key,
                tier=src.name,
                attempt=attempt,
                wait_seconds=wait,
            )
            start += wait

    # ------------------------------------------------------------------
    def submit(self, key: str, nbytes: int, now: float) -> FlushReport:
        """Hand one checkpoint object to the runtime at time *now*.

        Returns the object's full flush timeline; ``blocked_seconds`` is
        how long the *application* had to wait for host admission (zero in
        the healthy regime).
        """
        non_negative_int(nbytes, "nbytes")
        if now < 0:
            raise StorageError(f"submission time must be non-negative, got {now}")
        with telemetry.span("flush.submit", key=key, bytes=nbytes, sim_now=now) as span:
            report = self._submit(key, nbytes, now, span)
        _BLOCKED.observe(report.blocked_seconds)
        if self.persist is not None:
            self.persist(report)
        return report

    def _submit(self, key: str, nbytes: int, now: float, span) -> FlushReport:
        self._drain_departures(now)

        if self.tiers[0].is_dead(now):
            raise StorageError(
                f"host tier is failed at t={now:g}: cannot stage {key!r}"
            )
        admit_time = now
        if not self.tiers[0].fits(nbytes):
            admit_time = max(now, self._earliest_host_space(nbytes))
            self._drain_departures(admit_time)
        blocked = admit_time - now
        self.tiers[0].put(key, nbytes, admit_time)

        report = FlushReport(
            key=key, nbytes=nbytes, submitted_at=now, blocked_seconds=blocked
        )
        report.arrived[self.tiers[0].name] = admit_time

        # Drain down the chain: each link is FIFO and busy-until tracked;
        # transient outages back off, dead middle tiers are skipped.
        arrival = admit_time
        src_idx = 0
        terminal = len(self.tiers) - 1
        while src_idx < terminal:
            src = self.tiers[src_idx]
            start = max(arrival, src.link_busy_until)
            start = self._backoff_through_outage(src, start, report)
            finish = start + src.transfer_seconds(nbytes)
            dst_idx = self._next_live_tier(src_idx, finish, report)
            dst = self.tiers[dst_idx]
            src.link_busy_until = finish
            dst.put(key, nbytes, finish)
            # Source copy is released once fully drained.
            self._departures.append((finish, src_idx, key, nbytes))
            report.arrived[dst.name] = finish
            arrival = finish
            src_idx = dst_idx

        span.set(
            blocked_seconds=report.blocked_seconds,
            retries=report.retries,
            sim_persisted_at=report.persisted_at,
        )
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------
    @property
    def total_blocked_seconds(self) -> float:
        """Application-visible blocking across all submissions."""
        return sum(r.blocked_seconds for r in self.reports)

    @property
    def last_persisted_at(self) -> float:
        """When the final object reached the terminal tier."""
        return max((r.persisted_at for r in self.reports), default=0.0)

    @property
    def total_retries(self) -> int:
        """Drain retries across all submissions (fault-campaign metric)."""
        return sum(r.retries for r in self.reports)

    def peak_usage(self) -> Dict[str, int]:
        """High-water occupancy per tier."""
        return {t.name: t.peak_used for t in self.tiers}
