"""Asynchronous multi-level flush pipeline (the VeloC-style runtime, §2.3).

After the on-GPU de-duplication produces a consolidated diff in host
memory, the application resumes immediately; a background runtime drains
the diff down the hierarchy (host → SSD → PFS).  The application only
*blocks* when the host staging buffer cannot admit a new diff — the
failure mode the paper warns about at high checkpoint frequency with
full-size checkpoints (§1).

The pipeline is a small discrete-event simulation: each tier's drain link
is FIFO; an object occupies a tier from its arrival until it has fully
drained into the next one.  All times are simulated seconds on the same
clock as the GPU cost model, so a bench can run an entire checkpoint
cadence and report end-to-end I/O overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import StorageError
from ..utils.validation import non_negative_int, positive_float
from .storage import StorageTier, default_hierarchy


@dataclass
class FlushReport:
    """Timeline of one checkpoint object through the hierarchy."""

    key: str
    nbytes: int
    #: When the application handed the object to the runtime.
    submitted_at: float
    #: Seconds the application was blocked waiting for host space.
    blocked_seconds: float
    #: Arrival time at each tier, tier name → simulated seconds.
    arrived: Dict[str, float] = field(default_factory=dict)

    @property
    def persisted_at(self) -> float:
        """When the object reached the terminal tier."""
        return max(self.arrived.values())

    @property
    def end_to_end_seconds(self) -> float:
        """Submission → durably persisted."""
        return self.persisted_at - self.submitted_at


class AsyncFlushPipeline:
    """FIFO multi-tier flusher with blocking host admission.

    Parameters
    ----------
    tiers:
        Ordered hierarchy, fastest first; defaults to
        :func:`~repro.runtime.storage.default_hierarchy`.
    """

    def __init__(self, tiers: Optional[Sequence[StorageTier]] = None) -> None:
        self.tiers: List[StorageTier] = (
            list(tiers) if tiers is not None else default_hierarchy()
        )
        if len(self.tiers) < 2:
            raise StorageError("a flush hierarchy needs at least two tiers")
        self.reports: List[FlushReport] = []
        #: Pending evictions: (free_time, tier_index, key, nbytes).
        self._departures: List[tuple] = []

    # ------------------------------------------------------------------
    def _drain_departures(self, now: float) -> None:
        """Apply all evictions that completed by *now*."""
        remaining = []
        for free_time, tier_idx, key, nbytes in self._departures:
            if free_time <= now:
                self.tiers[tier_idx].remove(key)
            else:
                remaining.append((free_time, tier_idx, key, nbytes))
        self._departures = remaining

    def _earliest_host_space(self, nbytes: int) -> float:
        """Earliest simulated time the host tier can admit *nbytes*."""
        host = self.tiers[0]
        if host.fits(nbytes):
            return 0.0
        # Replay pending departures from the host tier in time order.
        freed = 0
        for free_time, tier_idx, _key, obj_bytes in sorted(self._departures):
            if tier_idx != 0:
                continue
            freed += obj_bytes
            if host.free_bytes + freed >= nbytes:
                return free_time
        raise StorageError(
            f"checkpoint of {nbytes} bytes can never fit the host tier "
            f"({self.tiers[0].capacity_bytes} bytes)"
        )

    # ------------------------------------------------------------------
    def submit(self, key: str, nbytes: int, now: float) -> FlushReport:
        """Hand one checkpoint object to the runtime at time *now*.

        Returns the object's full flush timeline; ``blocked_seconds`` is
        how long the *application* had to wait for host admission (zero in
        the healthy regime).
        """
        non_negative_int(nbytes, "nbytes")
        if now < 0:
            raise StorageError(f"submission time must be non-negative, got {now}")
        self._drain_departures(now)

        admit_time = now
        if not self.tiers[0].fits(nbytes):
            admit_time = max(now, self._earliest_host_space(nbytes))
            self._drain_departures(admit_time)
        blocked = admit_time - now
        self.tiers[0].put(key, nbytes, admit_time)

        report = FlushReport(
            key=key, nbytes=nbytes, submitted_at=now, blocked_seconds=blocked
        )
        report.arrived[self.tiers[0].name] = admit_time

        # Drain down the chain: each link is FIFO and busy-until tracked.
        arrival = admit_time
        for idx in range(len(self.tiers) - 1):
            src = self.tiers[idx]
            dst = self.tiers[idx + 1]
            start = max(arrival, src.link_busy_until)
            finish = start + src.transfer_seconds(nbytes)
            src.link_busy_until = finish
            dst.put(key, nbytes, finish)
            # Source copy is released once fully drained.
            self._departures.append((finish, idx, key, nbytes))
            report.arrived[dst.name] = finish
            arrival = finish

        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------
    @property
    def total_blocked_seconds(self) -> float:
        """Application-visible blocking across all submissions."""
        return sum(r.blocked_seconds for r in self.reports)

    @property
    def last_persisted_at(self) -> float:
        """When the final object reached the terminal tier."""
        return max((r.persisted_at for r in self.reports), default=0.0)

    def peak_usage(self) -> Dict[str, int]:
        """High-water occupancy per tier."""
        return {t.name: t.peak_used for t in self.tiers}
