"""Integrated node runtime — Fig. 3 end to end.

Combines everything on one simulated compute node: several application
processes (one per GPU) produce checkpoints on a cadence; each process
de-duplicates on its own GPU (priced with that node's PCIe contention),
hands the consolidated diff to the shared asynchronous flush hierarchy,
and resumes.  The runtime tracks the application-visible checkpoint
overhead — the paper's bottom-line metric: blocking time on the device
(de-dup + D2H) plus any stall waiting for host staging space.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.base import DedupEngine
from ..core.checkpointer import ENGINES
from ..core.diff import CheckpointDiff
from ..core.provenance import IndexedRestorer, ProvenanceBuilder
from ..core.restore import scrub_chain
from ..core.store import RecordWriter
from ..core.sharded_restore import ShardedRestorePlan, ShardReport
from ..errors import SimulationError
from ..gpusim.cluster import NodeSpec, thetagpu_node
from ..gpusim.perfmodel import KernelCostModel
from ..kokkos.execution import DeviceSpace
from ..utils.validation import positive_float, positive_int
from .. import telemetry
from ..telemetry import events
from .async_flush import AsyncFlushPipeline, FlushReport
from .storage import StorageTier

PathLike = Union[str, Path]

_CRASH_RESTARTS = telemetry.counter(
    "node.crash_restarts", "Simulated process crash/restart cycles"
)
_LOST_WORK = telemetry.histogram(
    "node.lost_work_seconds", "Simulated work lost per crash"
)


@dataclass
class NodeTimeline:
    """Per-process application timeline of one cadence run."""

    process: int
    #: Seconds the application spent inside checkpoint calls (device work
    #: + D2H, the synchronous part of Fig. 1's flow).
    blocking_device_seconds: float = 0.0
    #: Seconds stalled waiting for host staging admission.
    blocking_staging_seconds: float = 0.0
    stored_bytes: int = 0

    @property
    def total_overhead_seconds(self) -> float:
        """Application-visible checkpointing overhead."""
        return self.blocking_device_seconds + self.blocking_staging_seconds


@dataclass
class PersistedCheckpoint:
    """One checkpoint of one process as the durability tracker sees it."""

    ckpt_id: int
    diff: CheckpointDiff
    #: Simulated time the engine finished producing the diff — work up to
    #: this moment is recoverable once the diff is durable.
    produced_at: float
    #: Simulated time the diff reached the terminal tier.
    persisted_at: float


@dataclass
class CrashReport:
    """Outcome of one simulated process crash + restart.

    ``lost_work_seconds`` is the paper's motivating metric for checkpoint
    cadence: everything computed after the last *durable* checkpoint was
    produced is gone and must be recomputed after restart.
    """

    process: int
    crash_time: float
    #: Checkpoint the process restarted from (``None`` = cold restart).
    restored_ckpt_id: Optional[int]
    lost_work_seconds: float
    #: Bit-exact state the process restarts with (zeros on cold restart).
    restored_state: np.ndarray
    #: Checkpoints that were produced but not yet durable at crash time.
    in_flight_ckpts: List[int] = field(default_factory=list)
    #: Simulated seconds the indexed restore took (0 on cold restart).
    restore_seconds: float = 0.0
    #: Payload bytes the restore actually gathered from stored diffs.
    restore_payload_bytes: int = 0
    #: How many diffs' payloads the restored state actually lived in —
    #: the indexed path touches only these, not the whole chain.
    restore_sources: int = 0
    #: GPUs the restore's gathers were sharded across (1 = single-GPU).
    restore_fan_out: int = 1


class NodeRuntime:
    """Drives N per-GPU checkpoint pipelines over one node's hierarchy.

    Parameters
    ----------
    data_len / chunk_size / method:
        Per-process checkpoint configuration (homogeneous, as in the
        paper's deployments).
    num_processes:
        Processes sharing the node (≤ the node's GPU count).
    node:
        Node topology; defaults to a ThetaGPU DGX node.
    host_staging_bytes / host_drain_bandwidth / ssd_drain_bandwidth:
        Hierarchy sizing; the defaults scale with the checkpoint size so
        small test runs still exercise back-pressure realistically.
    name:
        Node identity stamped on journal events this runtime emits.
    record_root:
        Optional directory root for durable on-disk records.  When set,
        each process gets a :class:`~repro.core.store.RecordWriter` at
        ``record_root/p{rank}`` and every checkpoint is appended to it
        the moment its flush reaches the terminal tier — the record on
        disk tracks the durability ledger append-by-append instead of
        being rewritten wholesale at the end of a run.  A crash/restart
        resets that process's record and re-seeds it with the restart
        checkpoint, mirroring the in-memory ledger.
    heartbeat_interval:
        Expected simulated seconds between checkpoint rounds (the
        cadence period).  Stamped on every ``heartbeat`` journal event so
        a live :class:`~repro.telemetry.live.LivenessTracker` knows each
        rank's deadline without out-of-band configuration; ``None`` lets
        the tracker infer the cadence from observed gaps.
    """

    def __init__(
        self,
        data_len: int,
        chunk_size: int,
        method: str = "tree",
        num_processes: int = 4,
        node: Optional[NodeSpec] = None,
        host_staging_bytes: Optional[int] = None,
        host_drain_bandwidth: float = 3.0e9,
        ssd_drain_bandwidth: float = 2.0e9,
        name: str = "node0",
        record_root: Optional[PathLike] = None,
        heartbeat_interval: Optional[float] = None,
    ) -> None:
        positive_int(num_processes, "num_processes")
        self.name = name
        self.heartbeat_interval = (
            float(heartbeat_interval) if heartbeat_interval is not None else None
        )
        self.node = node if node is not None else thetagpu_node()
        if num_processes > self.node.gpus_per_node:
            raise ValueError(
                f"{num_processes} processes exceed the node's "
                f"{self.node.gpus_per_node} GPUs"
            )
        self.num_processes = num_processes
        contention = self.node.pcie_contention(num_processes)
        self.engines: List[DedupEngine] = [
            ENGINES[method](data_len, chunk_size) for _ in range(num_processes)
        ]
        self.cost_model = KernelCostModel(self.node.device, pcie_contention=contention)
        staging = (
            host_staging_bytes
            if host_staging_bytes is not None
            else 3 * data_len * num_processes
        )
        positive_float(host_drain_bandwidth, "host_drain_bandwidth")
        positive_float(ssd_drain_bandwidth, "ssd_drain_bandwidth")
        self.record_root = Path(record_root) if record_root is not None else None
        self._writers: Dict[int, RecordWriter] = {}
        #: Diffs staged for the persist hook, flush key → (rank, diff).
        self._pending_records: Dict[str, Tuple[int, CheckpointDiff]] = {}
        self.pipeline = AsyncFlushPipeline(
            [
                StorageTier("host", staging, host_drain_bandwidth),
                StorageTier("ssd", max(staging * 200, 1), ssd_drain_bandwidth),
                StorageTier("pfs", max(staging * 20_000, 1), 250.0e9),
            ],
            persist=self._persist_flushed if self.record_root is not None else None,
        )
        self.timelines = [NodeTimeline(process=p) for p in range(num_processes)]
        self._ckpt_counter = 0
        self._method = method
        self._data_len = data_len
        self._chunk_size = chunk_size
        #: Per-process durability ledger, appended by checkpoint_all.
        self.persisted: List[List[PersistedCheckpoint]] = [
            [] for _ in range(num_processes)
        ]
        #: Per-process chunk-provenance builders, kept in lockstep with the
        #: durability ledger so a crash restores via one indexed gather
        #: instead of replaying the whole chain.
        self.provenance: List[ProvenanceBuilder] = [
            ProvenanceBuilder() for _ in range(num_processes)
        ]
        self.crash_reports: List[CrashReport] = []

    # ------------------------------------------------------------------
    def record_writer(self, process: int) -> Optional[RecordWriter]:
        """The per-process record writer (``None`` without a record root)."""
        if self.record_root is None:
            return None
        writer = self._writers.get(process)
        if writer is None:
            writer = RecordWriter(
                self.record_root / f"p{process}", method=self._method
            )
            self._writers[process] = writer
        return writer

    def record_path(self, process: int) -> Optional[Path]:
        """Where *process*'s durable record lives (``None`` when not recording)."""
        if self.record_root is None:
            return None
        return self.record_root / f"p{process}"

    def _persist_flushed(self, report: FlushReport) -> None:
        """Flush-completion hook: append the flushed diff to its record."""
        staged = self._pending_records.pop(report.key, None)
        if staged is None:
            return
        rank, diff = staged
        self.record_writer(rank).append(diff)

    # ------------------------------------------------------------------
    def checkpoint_all(
        self,
        buffers: Sequence[np.ndarray],
        now: float,
        processes: Optional[Sequence[int]] = None,
    ) -> List[NodeTimeline]:
        """All processes checkpoint their buffer at simulated time *now*.

        *processes* restricts the round to a subset (the replay driver
        uses this to keep permanently-dead processes out of a cadence);
        the default checkpoints every process.  Returns the updated
        per-process timelines.
        """
        if len(buffers) != self.num_processes:
            raise ValueError(
                f"expected {self.num_processes} buffers, got {len(buffers)}"
            )
        active = (
            set(range(self.num_processes)) if processes is None else set(processes)
        )
        for p, (engine, buffer) in enumerate(zip(self.engines, buffers)):
            if p not in active:
                continue
            with telemetry.span(
                "node.checkpoint", space=engine.space, process=p, sim_now=now
            ):
                diff = engine.checkpoint(buffer)
            cost = self.cost_model.price(engine.last_checkpoint_view())
            timeline = self.timelines[p]
            timeline.blocking_device_seconds += cost.total_seconds
            timeline.stored_bytes += diff.serialized_size
            produced_at = now + cost.total_seconds
            key = f"p{p}-ck{self._ckpt_counter}"
            if self.record_root is not None:
                self._pending_records[key] = (p, diff)
            report = self.pipeline.submit(
                key,
                diff.serialized_size,
                now=produced_at,
            )
            timeline.blocking_staging_seconds += report.blocked_seconds
            self.persisted[p].append(
                PersistedCheckpoint(
                    ckpt_id=diff.ckpt_id,
                    diff=diff,
                    produced_at=produced_at,
                    persisted_at=report.persisted_at,
                )
            )
            self.provenance[p].append(diff)
            # The payload digest is only worth computing when a journal
            # is recording — replay uses it to prove bit-identical
            # durable content without shipping payloads around.
            payload_sha256 = (
                hashlib.sha256(diff.to_bytes()).hexdigest()
                if events.active_journal() is not None
                else None
            )
            events.emit(
                events.CHECKPOINT_COMMITTED,
                sim_time=produced_at,
                node=self.name,
                rank=p,
                ckpt_id=diff.ckpt_id,
                method=self._method,
                stored_bytes=diff.serialized_size,
                full_bytes=self._data_len,
                device_seconds=cost.total_seconds,
                blocked_seconds=report.blocked_seconds,
                produced_at=produced_at,
                persisted_at=report.persisted_at,
                retries=report.retries,
                skipped_tiers=list(report.skipped_tiers),
                payload_sha256=payload_sha256,
            )
            # Liveness signal: every rank that completes a round says so.
            # A rank that stops heartbeating (crashed without restart,
            # wedged mid-round) is exactly what the live monitor's
            # LivenessTracker exists to flag.
            events.emit(
                events.HEARTBEAT,
                sim_time=produced_at,
                node=self.name,
                rank=p,
                interval_seconds=self.heartbeat_interval,
                checkpoints=len(self.persisted[p]),
            )
        self._ckpt_counter += 1
        return self.timelines

    # ------------------------------------------------------------------
    # Crash / restart simulation (the failure the system exists for)
    # ------------------------------------------------------------------
    def crash_restart(
        self,
        process: int,
        at_time: float,
        scrub: bool = True,
        fan_out: int = 1,
    ) -> CrashReport:
        """Crash *process* at simulated time *at_time* and restart it.

        The process loses its in-memory state and every checkpoint still
        in flight through the hierarchy; it restarts from the latest
        checkpoint that was *durable* (had reached the terminal tier) by
        ``at_time``, reconstructed through the provenance-indexed restore
        path: the chunk-provenance builder maintained alongside the
        durability ledger resolves where every chunk's bytes live, and
        one gather per referenced diff rebuilds the state — no chain
        replay.  ``scrub=True`` (the default) still validates the whole
        chain first, exactly as the replay path did.  The engine is
        replaced with a fresh one seeded by re-checkpointing the restored
        state, so the dedup chain restarts consistently.

        ``fan_out`` shards the restore's gathers across that many of the
        node's GPUs (the crashed process's siblings are idle during a
        restart, so borrowing them is free): a
        :class:`~repro.core.sharded_restore.ShardedRestorePlan` splits
        the chunk range, each shard gathers on its own ``DeviceSpace``,
        and the restore cost becomes the fleet critical path under the
        node's PCIe contention at that fan-out.  Output is bit-identical
        to ``fan_out=1``.

        Returns a :class:`CrashReport` with the restored state, the
        lost-work metric, and the restore's simulated cost.
        """
        if not 0 <= process < self.num_processes:
            raise SimulationError(
                f"process {process} outside node of {self.num_processes}"
            )
        if at_time < 0:
            raise SimulationError(f"crash time must be non-negative, got {at_time}")
        positive_int(fan_out, "fan_out")
        if fan_out > self.node.gpus_per_node:
            raise SimulationError(
                f"fan-out {fan_out} exceeds the node's "
                f"{self.node.gpus_per_node} GPUs"
            )
        ledger = self.persisted[process]
        durable_idx = [i for i, c in enumerate(ledger) if c.persisted_at <= at_time]
        in_flight = [
            c.ckpt_id
            for c in ledger
            if c.produced_at <= at_time < c.persisted_at
        ]
        events.emit(
            events.CRASH,
            sim_time=at_time,
            node=self.name,
            rank=process,
            in_flight_ckpts=list(in_flight),
            durable_ckpts=len(durable_idx),
        )

        restore_seconds = 0.0
        restore_payload_bytes = 0
        restore_sources = 0
        if durable_idx and fan_out > 1:
            last = ledger[durable_idx[-1]]
            chain = [c.diff for c in ledger[: durable_idx[-1] + 1]]
            if scrub:
                scrub_chain(chain)
            builder = self.provenance[process]
            if len(builder) <= last.ckpt_id:
                builder.extend(chain[len(builder) : last.ckpt_id + 1])
            index = builder.index_for(last.ckpt_id)
            plan = ShardedRestorePlan(index, fan_out)
            spaces = [DeviceSpace(r) for r in range(fan_out)]
            reports = [
                ShardReport(rank=s.rank, chunk_lo=s.chunk_lo, chunk_hi=s.chunk_hi)
                for s in plan.shards
            ]

            def payload_of(t: int) -> np.ndarray:
                return np.frombuffer(chain[t].payload, dtype=np.uint8)

            with telemetry.span(
                "node.crash_restart",
                process=process,
                crash_time=at_time,
                fan_out=fan_out,
            ) as span:
                restored = plan.materialize(
                    payload_of, spaces=spaces, reports=reports
                )
                restore_payload_bytes = sum(
                    r.total_payload_bytes_read for r in reports
                )
                restore_sources = int(index.referenced().size)
                span.set(
                    restored_ckpt_id=last.ckpt_id,
                    payload_bytes=restore_payload_bytes,
                    sources=restore_sources,
                )
            contention = [self.node.pcie_contention(fan_out)] * fan_out
            cost = self.cost_model.price_fleet_restore(
                [s.ledger for s in spaces],
                restored_bytes=self._data_len,
                contention=contention,
            )
            restore_seconds = cost.critical_path_seconds
            events.emit(
                events.RESTORE,
                path="sharded_node",
                sim_time=at_time,
                node=self.name,
                rank=process,
                target_ckpt=last.ckpt_id,
                chain_len=len(chain),
                ranks=fan_out,
                state_bytes=int(restored.nbytes),
                payload_bytes=restore_payload_bytes,
                sources=restore_sources,
                critical_path_seconds=restore_seconds,
            )
            restored_id: Optional[int] = last.ckpt_id
            lost = max(0.0, at_time - last.produced_at)
        elif durable_idx:
            last = ledger[durable_idx[-1]]
            chain = [c.diff for c in ledger[: durable_idx[-1] + 1]]
            space = DeviceSpace(process)
            restorer = IndexedRestorer(scrub=scrub, space=space)
            with telemetry.span(
                "node.crash_restart",
                space=space,
                process=process,
                crash_time=at_time,
            ) as span:
                restored, rreport = restorer.restore_with_report(
                    chain, upto=last.ckpt_id, builder=self.provenance[process]
                )
                span.set(
                    restored_ckpt_id=last.ckpt_id,
                    payload_bytes=rreport.total_payload_bytes_read,
                    sources=rreport.frames_referenced,
                )
            cost = self.cost_model.price_restore(space.ledger, self._data_len)
            restore_seconds = cost.seconds
            restore_payload_bytes = rreport.total_payload_bytes_read
            restore_sources = rreport.frames_referenced
            restored_id = last.ckpt_id
            lost = max(0.0, at_time - last.produced_at)
        else:
            telemetry.instant("node.cold_restart", process=process)
            restored = np.zeros(self._data_len, dtype=np.uint8)
            restored_id = None
            lost = at_time

        # Replace the crashed process's engine and rebuild its dedup
        # state from the restored checkpoint.  The new engine's chain
        # restarts at checkpoint 0, so the durability ledger restarts
        # with it: the restart checkpoint is durable by construction
        # (it was reconstructed from data already on the terminal tier).
        engine = ENGINES[self._method](self._data_len, self._chunk_size)
        self.persisted[process] = []
        self.provenance[process].reset()
        if self.record_root is not None:
            self._pending_records = {
                key: staged
                for key, staged in self._pending_records.items()
                if staged[0] != process
            }
            self.record_writer(process).reset()
        if restored_id is not None:
            seed_diff = engine.checkpoint(restored)
            self.persisted[process].append(
                PersistedCheckpoint(
                    ckpt_id=seed_diff.ckpt_id,
                    diff=seed_diff,
                    produced_at=at_time,
                    persisted_at=at_time,
                )
            )
            self.provenance[process].append(seed_diff)
            if self.record_root is not None:
                # The restart checkpoint is durable by construction (it
                # was rebuilt from bytes already on the terminal tier),
                # so it re-seeds the on-disk record immediately.
                self.record_writer(process).append(seed_diff)
        self.engines[process] = engine

        events.emit(
            events.RESTART,
            sim_time=at_time,
            node=self.name,
            rank=process,
            restored_ckpt_id=restored_id,
            cold=restored_id is None,
            lost_work_seconds=lost,
            restore_seconds=restore_seconds,
            restore_payload_bytes=restore_payload_bytes,
            restore_sources=restore_sources,
        )
        report = CrashReport(
            process=process,
            crash_time=at_time,
            restored_ckpt_id=restored_id,
            lost_work_seconds=lost,
            restored_state=restored,
            in_flight_ckpts=in_flight,
            restore_seconds=restore_seconds,
            restore_payload_bytes=restore_payload_bytes,
            restore_sources=restore_sources,
            restore_fan_out=fan_out,
        )
        self.crash_reports.append(report)
        _CRASH_RESTARTS.inc()
        _LOST_WORK.observe(lost)
        return report

    @property
    def total_lost_work_seconds(self) -> float:
        """Summed lost work across all simulated crashes."""
        return sum(r.lost_work_seconds for r in self.crash_reports)

    # ------------------------------------------------------------------
    @property
    def total_overhead_seconds(self) -> float:
        """Summed application-visible overhead across processes."""
        return sum(t.total_overhead_seconds for t in self.timelines)

    @property
    def total_stored_bytes(self) -> int:
        """Total bytes shipped into the hierarchy."""
        return sum(t.stored_bytes for t in self.timelines)

    def overhead_report(self) -> Dict[str, float]:
        """Aggregate numbers a bench prints."""
        return {
            "device_seconds": sum(t.blocking_device_seconds for t in self.timelines),
            "staging_seconds": sum(t.blocking_staging_seconds for t in self.timelines),
            "stored_bytes": float(self.total_stored_bytes),
            "durable_at": self.pipeline.last_persisted_at,
            "host_peak": float(self.pipeline.peak_usage()["host"]),
        }
