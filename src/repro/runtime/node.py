"""Integrated node runtime — Fig. 3 end to end.

Combines everything on one simulated compute node: several application
processes (one per GPU) produce checkpoints on a cadence; each process
de-duplicates on its own GPU (priced with that node's PCIe contention),
hands the consolidated diff to the shared asynchronous flush hierarchy,
and resumes.  The runtime tracks the application-visible checkpoint
overhead — the paper's bottom-line metric: blocking time on the device
(de-dup + D2H) plus any stall waiting for host staging space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.base import DedupEngine
from ..core.checkpointer import ENGINES
from ..gpusim.cluster import NodeSpec, thetagpu_node
from ..gpusim.perfmodel import KernelCostModel
from ..utils.validation import positive_float, positive_int
from .async_flush import AsyncFlushPipeline
from .storage import StorageTier


@dataclass
class NodeTimeline:
    """Per-process application timeline of one cadence run."""

    process: int
    #: Seconds the application spent inside checkpoint calls (device work
    #: + D2H, the synchronous part of Fig. 1's flow).
    blocking_device_seconds: float = 0.0
    #: Seconds stalled waiting for host staging admission.
    blocking_staging_seconds: float = 0.0
    stored_bytes: int = 0

    @property
    def total_overhead_seconds(self) -> float:
        """Application-visible checkpointing overhead."""
        return self.blocking_device_seconds + self.blocking_staging_seconds


class NodeRuntime:
    """Drives N per-GPU checkpoint pipelines over one node's hierarchy.

    Parameters
    ----------
    data_len / chunk_size / method:
        Per-process checkpoint configuration (homogeneous, as in the
        paper's deployments).
    num_processes:
        Processes sharing the node (≤ the node's GPU count).
    node:
        Node topology; defaults to a ThetaGPU DGX node.
    host_staging_bytes / host_drain_bandwidth / ssd_drain_bandwidth:
        Hierarchy sizing; the defaults scale with the checkpoint size so
        small test runs still exercise back-pressure realistically.
    """

    def __init__(
        self,
        data_len: int,
        chunk_size: int,
        method: str = "tree",
        num_processes: int = 4,
        node: Optional[NodeSpec] = None,
        host_staging_bytes: Optional[int] = None,
        host_drain_bandwidth: float = 3.0e9,
        ssd_drain_bandwidth: float = 2.0e9,
    ) -> None:
        positive_int(num_processes, "num_processes")
        self.node = node if node is not None else thetagpu_node()
        if num_processes > self.node.gpus_per_node:
            raise ValueError(
                f"{num_processes} processes exceed the node's "
                f"{self.node.gpus_per_node} GPUs"
            )
        self.num_processes = num_processes
        contention = self.node.pcie_contention(num_processes)
        self.engines: List[DedupEngine] = [
            ENGINES[method](data_len, chunk_size) for _ in range(num_processes)
        ]
        self.cost_model = KernelCostModel(self.node.device, pcie_contention=contention)
        staging = (
            host_staging_bytes
            if host_staging_bytes is not None
            else 3 * data_len * num_processes
        )
        positive_float(host_drain_bandwidth, "host_drain_bandwidth")
        positive_float(ssd_drain_bandwidth, "ssd_drain_bandwidth")
        self.pipeline = AsyncFlushPipeline(
            [
                StorageTier("host", staging, host_drain_bandwidth),
                StorageTier("ssd", max(staging * 200, 1), ssd_drain_bandwidth),
                StorageTier("pfs", max(staging * 20_000, 1), 250.0e9),
            ]
        )
        self.timelines = [NodeTimeline(process=p) for p in range(num_processes)]
        self._ckpt_counter = 0

    # ------------------------------------------------------------------
    def checkpoint_all(
        self, buffers: Sequence[np.ndarray], now: float
    ) -> List[NodeTimeline]:
        """All processes checkpoint their buffer at simulated time *now*.

        Returns the updated per-process timelines.
        """
        if len(buffers) != self.num_processes:
            raise ValueError(
                f"expected {self.num_processes} buffers, got {len(buffers)}"
            )
        for p, (engine, buffer) in enumerate(zip(self.engines, buffers)):
            diff = engine.checkpoint(buffer)
            cost = self.cost_model.price(engine.space.ledger)
            timeline = self.timelines[p]
            timeline.blocking_device_seconds += cost.total_seconds
            timeline.stored_bytes += diff.serialized_size
            report = self.pipeline.submit(
                f"p{p}-ck{self._ckpt_counter}",
                diff.serialized_size,
                now=now + cost.total_seconds,
            )
            timeline.blocking_staging_seconds += report.blocked_seconds
        self._ckpt_counter += 1
        return self.timelines

    # ------------------------------------------------------------------
    @property
    def total_overhead_seconds(self) -> float:
        """Summed application-visible overhead across processes."""
        return sum(t.total_overhead_seconds for t in self.timelines)

    @property
    def total_stored_bytes(self) -> int:
        """Total bytes shipped into the hierarchy."""
        return sum(t.stored_bytes for t in self.timelines)

    def overhead_report(self) -> Dict[str, float]:
        """Aggregate numbers a bench prints."""
        return {
            "device_seconds": sum(t.blocking_device_seconds for t in self.timelines),
            "staging_seconds": sum(t.blocking_staging_seconds for t in self.timelines),
            "stored_bytes": float(self.total_stored_bytes),
            "durable_at": self.pipeline.last_persisted_at,
            "host_peak": float(self.pipeline.peak_usage()["host"]),
        }
