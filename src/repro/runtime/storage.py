"""Storage tiers of the multi-level checkpointing hierarchy (Fig. 3).

Each tier has a capacity and a drain bandwidth; checkpoint objects move
host memory → node-local SSD → parallel file system asynchronously while
the application keeps running.  The tier objects track occupancy over
simulated time so the flush pipeline can reproduce the paper's argument
that smaller diffs keep intermediate tiers from filling up (§2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import StorageError
from ..utils.units import GB, format_bytes
from ..utils.validation import non_negative_int, positive_float, positive_int


@dataclass
class StoredObject:
    """One checkpoint object resident in a tier."""

    key: str
    nbytes: int
    arrived_at: float


class StorageTier:
    """A capacity/bandwidth-constrained stage of the storage hierarchy."""

    def __init__(self, name: str, capacity_bytes: int, bandwidth: float) -> None:
        positive_int(capacity_bytes, "capacity_bytes")
        positive_float(bandwidth, "bandwidth")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.bandwidth = bandwidth
        self._objects: Dict[str, StoredObject] = {}
        self._used = 0
        #: Simulated time until which the tier's drain link is busy.
        self.link_busy_until = 0.0
        #: High-water mark of occupancy (reported by the runtime bench).
        self.peak_used = 0

    @property
    def used_bytes(self) -> int:
        """Current occupancy."""
        return self._used

    @property
    def free_bytes(self) -> int:
        """Remaining capacity."""
        return self.capacity_bytes - self._used

    def fits(self, nbytes: int) -> bool:
        """Whether an object of *nbytes* can be admitted now."""
        non_negative_int(nbytes, "nbytes")
        return nbytes <= self.free_bytes

    def put(self, key: str, nbytes: int, now: float) -> None:
        """Admit an object; raises :class:`StorageError` when full."""
        if key in self._objects:
            raise StorageError(f"tier {self.name}: duplicate object {key!r}")
        if not self.fits(nbytes):
            raise StorageError(
                f"tier {self.name} full: {format_bytes(nbytes)} requested, "
                f"{format_bytes(self.free_bytes)} free"
            )
        self._objects[key] = StoredObject(key, nbytes, now)
        self._used += nbytes
        self.peak_used = max(self.peak_used, self._used)

    def remove(self, key: str) -> int:
        """Evict an object, returning its size."""
        try:
            obj = self._objects.pop(key)
        except KeyError:
            raise StorageError(f"tier {self.name}: no object {key!r}") from None
        self._used -= obj.nbytes
        return obj.nbytes

    def contains(self, key: str) -> bool:
        """Object residency check."""
        return key in self._objects

    def transfer_seconds(self, nbytes: int) -> float:
        """Time to push *nbytes* through this tier's drain link."""
        non_negative_int(nbytes, "nbytes")
        return nbytes / self.bandwidth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<StorageTier {self.name} {format_bytes(self._used)}/"
            f"{format_bytes(self.capacity_bytes)}>"
        )


def default_hierarchy(
    host_memory_bytes: int = 64 * GB,
    host_drain_bandwidth: float = 3.2 * GB,
    ssd_bytes: int = 1600 * GB,
    ssd_drain_bandwidth: float = 2.0 * GB,
    pfs_bytes: int = 100_000 * GB,
    pfs_bandwidth: float = 250.0 * GB,
) -> List[StorageTier]:
    """The host → SSD → PFS chain of Fig. 3 with ALCF-flavoured defaults.

    Each tier's ``bandwidth`` is the rate at which objects drain *out of*
    it toward the next tier (the PFS is terminal; its bandwidth caps
    ingest and is shared cluster-wide by the Fig. 6 driver).
    """
    return [
        StorageTier("host", host_memory_bytes, host_drain_bandwidth),
        StorageTier("ssd", ssd_bytes, ssd_drain_bandwidth),
        StorageTier("pfs", pfs_bytes, pfs_bandwidth),
    ]
