"""Storage tiers of the multi-level checkpointing hierarchy (Fig. 3).

Each tier has a capacity and a drain bandwidth; checkpoint objects move
host memory → node-local SSD → parallel file system asynchronously while
the application keeps running.  The tier objects track occupancy over
simulated time so the flush pipeline can reproduce the paper's argument
that smaller diffs keep intermediate tiers from filling up (§2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import StorageError
from ..telemetry import events
from ..utils.units import GB, format_bytes
from ..utils.validation import non_negative_int, positive_float, positive_int


@dataclass
class StoredObject:
    """One checkpoint object resident in a tier."""

    key: str
    nbytes: int
    arrived_at: float


@dataclass(frozen=True)
class TierOutage:
    """One injected failure window of a tier, on the simulated clock.

    ``transient`` outages block the tier's *drain link* during
    ``[start, start + duration)`` — attempts fail and must be retried.
    ``permanent`` outages kill the whole tier from ``start`` on:
    admissions and drains both fail forever; the pipeline must route
    around it or give up.
    """

    kind: str  # "transient" | "permanent"
    start: float
    duration: float = 0.0  # ignored for permanent outages

    @property
    def end(self) -> float:
        return float("inf") if self.kind == "permanent" else self.start + self.duration


class StorageTier:
    """A capacity/bandwidth-constrained stage of the storage hierarchy."""

    def __init__(self, name: str, capacity_bytes: int, bandwidth: float) -> None:
        positive_int(capacity_bytes, "capacity_bytes")
        positive_float(bandwidth, "bandwidth")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.bandwidth = bandwidth
        self._objects: Dict[str, StoredObject] = {}
        self._used = 0
        #: Simulated time until which the tier's drain link is busy.
        self.link_busy_until = 0.0
        #: High-water mark of occupancy (reported by the runtime bench).
        self.peak_used = 0
        #: Injected failure windows, newest last (see :class:`TierOutage`).
        self.outages: List[TierOutage] = []

    # ------------------------------------------------------------------
    # Fault injection (driven by repro.faults.FaultPlan or tests)
    # ------------------------------------------------------------------
    def fail_transient(self, start: float, duration: float) -> TierOutage:
        """Inject a transient drain outage over ``[start, start+duration)``."""
        if start < 0:
            raise StorageError(f"outage start must be non-negative, got {start}")
        positive_float(duration, "duration")
        outage = TierOutage("transient", start, duration)
        self.outages.append(outage)
        events.emit(
            events.TIER_OUTAGE,
            sim_time=start,
            tier=self.name,
            kind="transient",
            duration=duration,
        )
        return outage

    def fail_permanent(self, start: float) -> TierOutage:
        """Kill the tier from simulated time *start* onwards."""
        if start < 0:
            raise StorageError(f"outage start must be non-negative, got {start}")
        outage = TierOutage("permanent", start)
        self.outages.append(outage)
        events.emit(
            events.TIER_OUTAGE, sim_time=start, tier=self.name, kind="permanent"
        )
        return outage

    def is_dead(self, now: float) -> bool:
        """Whether a permanent outage has taken the tier down by *now*."""
        return any(
            o.kind == "permanent" and o.start <= now for o in self.outages
        )

    def drain_blocked_until(self, now: float) -> Optional[float]:
        """If the drain link is faulted at *now*, when the outage clears.

        Returns ``None`` when the link is healthy, ``inf`` for a
        permanent outage, else the end of the covering transient window.
        """
        blocked: Optional[float] = None
        for o in self.outages:
            if o.start <= now < o.end:
                blocked = o.end if blocked is None else max(blocked, o.end)
        return blocked

    @property
    def used_bytes(self) -> int:
        """Current occupancy."""
        return self._used

    @property
    def free_bytes(self) -> int:
        """Remaining capacity."""
        return self.capacity_bytes - self._used

    def fits(self, nbytes: int) -> bool:
        """Whether an object of *nbytes* can be admitted now."""
        non_negative_int(nbytes, "nbytes")
        return nbytes <= self.free_bytes

    def put(self, key: str, nbytes: int, now: float) -> None:
        """Admit an object; raises :class:`StorageError` when full or dead."""
        if self.is_dead(now):
            raise StorageError(f"tier {self.name} is failed at t={now:g}")
        if key in self._objects:
            raise StorageError(f"tier {self.name}: duplicate object {key!r}")
        if not self.fits(nbytes):
            raise StorageError(
                f"tier {self.name} full: {format_bytes(nbytes)} requested, "
                f"{format_bytes(self.free_bytes)} free"
            )
        self._objects[key] = StoredObject(key, nbytes, now)
        self._used += nbytes
        self.peak_used = max(self.peak_used, self._used)

    def remove(self, key: str) -> int:
        """Evict an object, returning its size."""
        try:
            obj = self._objects.pop(key)
        except KeyError:
            raise StorageError(f"tier {self.name}: no object {key!r}") from None
        self._used -= obj.nbytes
        return obj.nbytes

    def contains(self, key: str) -> bool:
        """Object residency check."""
        return key in self._objects

    def transfer_seconds(self, nbytes: int) -> float:
        """Time to push *nbytes* through this tier's drain link."""
        non_negative_int(nbytes, "nbytes")
        return nbytes / self.bandwidth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<StorageTier {self.name} {format_bytes(self._used)}/"
            f"{format_bytes(self.capacity_bytes)}>"
        )


def default_hierarchy(
    host_memory_bytes: int = 64 * GB,
    host_drain_bandwidth: float = 3.2 * GB,
    ssd_bytes: int = 1600 * GB,
    ssd_drain_bandwidth: float = 2.0 * GB,
    pfs_bytes: int = 100_000 * GB,
    pfs_bandwidth: float = 250.0 * GB,
) -> List[StorageTier]:
    """The host → SSD → PFS chain of Fig. 3 with ALCF-flavoured defaults.

    Each tier's ``bandwidth`` is the rate at which objects drain *out of*
    it toward the next tier (the PFS is terminal; its bandwidth caps
    ingest and is shared cluster-wide by the Fig. 6 driver).
    """
    return [
        StorageTier("host", host_memory_bytes, host_drain_bandwidth),
        StorageTier("ssd", ssd_bytes, ssd_drain_bandwidth),
        StorageTier("pfs", pfs_bytes, pfs_bandwidth),
    ]
