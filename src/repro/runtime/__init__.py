"""Multi-level asynchronous checkpoint runtime and scaling driver (Fig. 3,
Fig. 6): storage tiers, FIFO flush pipeline with blocking host admission,
and the strong-scaling experiment harness."""

from .async_flush import AsyncFlushPipeline, FlushReport
from .node import NodeRuntime, NodeTimeline
from .scaling import (
    ScalingResult,
    StrongScalingDriver,
    induced_partition_graph,
    partition_vertices,
)
from .streaming import StreamingEstimate, StreamingScheduler
from .storage import StorageTier, StoredObject, default_hierarchy

__all__ = [
    "AsyncFlushPipeline",
    "FlushReport",
    "NodeRuntime",
    "NodeTimeline",
    "ScalingResult",
    "StrongScalingDriver",
    "induced_partition_graph",
    "partition_vertices",
    "StreamingEstimate",
    "StreamingScheduler",
    "StorageTier",
    "StoredObject",
    "default_hierarchy",
]
