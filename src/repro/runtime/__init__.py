"""Multi-level asynchronous checkpoint runtime and scaling driver (Fig. 3,
Fig. 6): storage tiers, FIFO flush pipeline with blocking host admission,
and the strong-scaling experiment harness — plus the failure path:
tier outages with retry/route-around and crash-restart recovery."""

from .async_flush import AsyncFlushPipeline, FlushReport
from .fleet_restore import FleetRestoreReport, restore_record_sharded
from .node import CrashReport, NodeRuntime, NodeTimeline, PersistedCheckpoint
from .scaling import (
    FleetRestartResult,
    ScalingResult,
    StrongScalingDriver,
    induced_partition_graph,
    partition_vertices,
)
from .streaming import StreamingEstimate, StreamingScheduler
from .storage import StorageTier, StoredObject, TierOutage, default_hierarchy

__all__ = [
    "AsyncFlushPipeline",
    "FlushReport",
    "CrashReport",
    "NodeRuntime",
    "NodeTimeline",
    "PersistedCheckpoint",
    "FleetRestoreReport",
    "restore_record_sharded",
    "FleetRestartResult",
    "ScalingResult",
    "StrongScalingDriver",
    "induced_partition_graph",
    "partition_vertices",
    "StreamingEstimate",
    "StreamingScheduler",
    "StorageTier",
    "StoredObject",
    "TierOutage",
    "default_hierarchy",
]
