"""Strong-scaling driver — the Fig. 6 experiment.

The paper runs ORANGES on 1–64 GPUs: the input graph is partitioned, each
process owns one partition and one GPU, de-duplicates its own checkpoints
independently, and the only coupling is PCIe contention between GPUs on
the same node (§2.3) plus the shared PFS further down.  Throughput at
scale is measured as total checkpointed bytes over the *slowest* process
(§3.3).

This driver reproduces that setup in-process: it partitions the graph's
vertex range, runs one engine + checkpointer per simulated rank (each with
its own RNG stream and its node's contention factor), and merges records.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.checkpointer import IncrementalCheckpointer
from ..core.provenance import restore_record_indexed
from ..errors import RestoreError, SimulationError
from ..gpusim.cluster import ClusterSpec, thetagpu
from ..gpusim.perfmodel import KernelCostModel
from ..graphs.csr import Graph
from ..kokkos.execution import DeviceSpace
from ..oranges.gdv import GdvEngine
from ..telemetry.aggregate import merge_journals
from ..telemetry.events import CHECKPOINT_COMMITTED, HEARTBEAT, RESTORE, EventJournal
from ..utils.validation import positive_int
from .fleet_restore import restore_record_sharded


@dataclass
class ScalingResult:
    """Merged outcome of one strong-scaling point."""

    num_processes: int
    num_checkpoints: int
    method: str
    total_full_bytes: int
    total_stored_bytes: int
    #: Σ over checkpoints of the slowest process's simulated seconds.
    critical_path_seconds: float
    per_process_stored: List[int] = field(default_factory=list)
    #: Merged per-rank journal events (``capture_events=True`` runs only),
    #: in canonical merge order — feed to ``telemetry.build_rollup``.
    events: List[dict] = field(default_factory=list)

    @property
    def dedup_ratio(self) -> float:
        """Aggregate full/stored ratio across all processes."""
        if self.total_stored_bytes == 0:
            return float("inf")
        return self.total_full_bytes / self.total_stored_bytes

    @property
    def aggregate_throughput(self) -> float:
        """Total bytes over the critical-path time (paper's Fig. 6b)."""
        if self.critical_path_seconds <= 0:
            return float("inf")
        return self.total_full_bytes / self.critical_path_seconds


@dataclass
class FleetRestartResult:
    """One fleet-restart point: N ranks restoring from a shared record."""

    num_ranks: int
    windows: int
    #: Simulated seconds of the single-GPU indexed restore (PFS read
    #: included) — the baseline the sharded path is measured against.
    single_seconds: float
    #: Simulated fleet critical path: shared read pipelined against the
    #: slowest rank's gathers.
    critical_path_seconds: float
    read_seconds: float
    state_bytes: int
    per_rank_seconds: List[float] = field(default_factory=list)
    #: Merged per-rank journal events (``capture_events=True`` runs only).
    events: List[dict] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Single-GPU restore time over the fleet critical path."""
        if self.critical_path_seconds <= 0:
            return float("inf")
        return self.single_seconds / self.critical_path_seconds

    @property
    def efficiency(self) -> float:
        """Speedup over rank count — 1.0 is perfect strong scaling."""
        return self.speedup / self.num_ranks


def partition_vertices(num_vertices: int, num_parts: int) -> List[np.ndarray]:
    """Contiguous balanced vertex ranges, one per process."""
    positive_int(num_vertices, "num_vertices")
    positive_int(num_parts, "num_parts")
    if num_parts > num_vertices:
        raise SimulationError(
            f"cannot split {num_vertices} vertices across {num_parts} processes"
        )
    bounds = np.linspace(0, num_vertices, num_parts + 1).astype(np.int64)
    return [np.arange(bounds[i], bounds[i + 1]) for i in range(num_parts)]


def induced_partition_graph(graph: Graph, vertices: np.ndarray) -> Graph:
    """Induced subgraph on a contiguous vertex range, relabeled to 0..n.

    Cross-partition edges are cut — each rank enumerates graphlets local
    to its partition, the embarrassingly-parallel decomposition the paper
    describes (the final reduction is outside the checkpointed phase).
    """
    lo, hi = int(vertices[0]), int(vertices[-1]) + 1
    edges = graph.edges()
    mask = (edges[:, 0] >= lo) & (edges[:, 0] < hi) & (edges[:, 1] >= lo) & (
        edges[:, 1] < hi
    )
    local = edges[mask] - lo
    return Graph.from_edges(hi - lo, local)


def _run_rank(
    args: Tuple[Graph, str, int, int, float, int, int, str, bool, Optional[str]]
) -> Tuple[int, int, List[float], List[dict]]:
    """One rank's whole pipeline (module-level so it pickles for pools).

    Returns ``(full_bytes, stored_bytes, per-checkpoint seconds, events)``
    — *events* are the rank's journal records (plain dicts, so they
    survive the pickle boundary of a process pool) when capture is on.
    """
    (
        local,
        method,
        chunk_size,
        max_graphlet_size,
        contention,
        num_ckpts,
        rank,
        node_name,
        capture,
        run_id,
    ) = args
    engine = GdvEngine(local, max_graphlet_size)
    ckpt = IncrementalCheckpointer(
        data_len=engine.buffer_nbytes,
        chunk_size=chunk_size,
        method=method,
        pcie_contention=contention,
    )
    journal = (
        EventJournal(node=node_name, rank=rank, run_id=run_id)
        if capture
        else None
    )
    cursor = 0.0
    seconds = []
    for snapshot in engine.checkpoint_stream(num_ckpts):
        stats = ckpt.checkpoint(snapshot)
        seconds.append(stats.simulated_seconds)
        if journal is not None:
            cursor += stats.simulated_seconds
            journal.emit(
                CHECKPOINT_COMMITTED,
                sim_time=cursor,
                ckpt_id=stats.ckpt_id,
                method=method,
                stored_bytes=stats.stored_bytes,
                full_bytes=stats.data_len,
                device_seconds=stats.simulated_seconds,
            )
            # Fleet ranks have no fixed cadence period (each checkpoint
            # takes as long as its kernels take), so the liveness tracker
            # infers the deadline from observed heartbeat gaps.
            journal.emit(
                HEARTBEAT,
                sim_time=cursor,
                interval_seconds=None,
                checkpoints=stats.ckpt_id + 1,
            )
    return (
        ckpt.record.total_full_bytes(),
        ckpt.record.total_stored_bytes(),
        seconds,
        journal.records() if journal is not None else [],
    )


class StrongScalingDriver:
    """Runs the Fig. 6 experiment for one process count.

    Parameters
    ----------
    graph:
        The full input graph (Delaunay in the paper).
    cluster:
        Node/PFS topology supplying per-process PCIe contention.
    method / chunk_size:
        Checkpointing configuration for every process.
    workers:
        Host CPU processes to execute ranks with.  1 (default) runs ranks
        sequentially in-process; >1 uses a process pool, so large sweeps
        exploit the host's cores the way the real deployment exploits its
        nodes.  Results are bit-identical either way (each rank is a pure
        function of its partition).
    capture_events:
        When true, every rank keeps a private event journal (tagged with
        its node placement) and the merged stream lands on
        ``ScalingResult.events`` — the fleet-observability input for
        ``telemetry.build_rollup`` / ``evaluate_health``.
    """

    def __init__(
        self,
        graph: Graph,
        cluster: Optional[ClusterSpec] = None,
        method: str = "tree",
        chunk_size: int = 128,
        max_graphlet_size: int = 4,
        workers: int = 1,
        capture_events: bool = False,
    ) -> None:
        positive_int(workers, "workers")
        self.graph = graph
        self.cluster = cluster if cluster is not None else thetagpu()
        self.method = method
        self.chunk_size = chunk_size
        self.max_graphlet_size = max_graphlet_size
        self.workers = workers
        self.capture_events = capture_events

    def run(self, num_processes: int, num_checkpoints: int = 10) -> ScalingResult:
        """Execute all ranks and merge their records."""
        positive_int(num_processes, "num_processes")
        positive_int(num_checkpoints, "num_checkpoints")
        contention = self.cluster.pcie_contention_for(num_processes)

        parts = partition_vertices(self.graph.num_vertices, num_processes)
        gpus_per_node = self.cluster.node.gpus_per_node
        # One deterministic run identity shared by every rank's journal,
        # so the merged stream is a single-run (replay-safe) journal.
        run_id = (
            f"fleet-{self.method}-p{num_processes}-c{num_checkpoints}"
            f"-v{self.graph.num_vertices}"
        )
        jobs = [
            (
                induced_partition_graph(self.graph, parts[rank]),
                self.method,
                self.chunk_size,
                self.max_graphlet_size,
                contention[rank],
                num_checkpoints,
                rank,
                f"node{rank // gpus_per_node}",
                self.capture_events,
                run_id,
            )
            for rank in range(num_processes)
        ]
        if self.workers > 1 and num_processes > 1:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                outcomes = list(pool.map(_run_rank, jobs))
        else:
            outcomes = [_run_rank(job) for job in jobs]

        per_ckpt_seconds = np.zeros((num_processes, num_checkpoints))
        total_full = 0
        total_stored = 0
        per_process_stored: List[int] = []
        per_rank_events: List[List[dict]] = []
        for rank, (full, stored, seconds, rank_events) in enumerate(outcomes):
            total_full += full
            total_stored += stored
            per_process_stored.append(stored)
            per_ckpt_seconds[rank, : len(seconds)] = seconds
            if rank_events:
                per_rank_events.append(rank_events)

        critical_path = float(per_ckpt_seconds.max(axis=0).sum())
        return ScalingResult(
            num_processes=num_processes,
            num_checkpoints=num_checkpoints,
            method=self.method,
            total_full_bytes=total_full,
            total_stored_bytes=total_stored,
            critical_path_seconds=critical_path,
            per_process_stored=per_process_stored,
            events=merge_journals(per_rank_events) if per_rank_events else [],
        )

    # ------------------------------------------------------------------
    def fleet_restart(
        self,
        record_dir,
        num_ranks: int,
        upto: Optional[int] = None,
        windows: Optional[int] = None,
    ) -> FleetRestartResult:
        """Restore all *num_ranks* ranks from one shared stored record.

        The fleet-restart half of the Fig. 6 experiment: every rank of a
        restarted job needs the same checkpoint back, so the restore is
        sharded across the fleet's GPUs (each under its placement's PCIe
        contention) while the shared PFS read of the referenced frames
        streams against the gathers.  The single-GPU indexed restore —
        same record, same PFS read — is priced as the baseline, and the
        sharded output is checked bit-identical against it before any
        number is reported.
        """
        positive_int(num_ranks, "num_ranks")
        space = DeviceSpace(0)
        single, sreport = restore_record_indexed(record_dir, upto=upto, space=space)
        model = KernelCostModel(self.cluster.node.device)
        single_cost = model.price_restore(
            space.ledger,
            int(single.nbytes),
            read_bytes=sreport.record_bytes_read,
            read_bandwidth=self.cluster.pfs_bandwidth,
        )

        out, report = restore_record_sharded(
            record_dir,
            num_ranks,
            cluster=self.cluster,
            upto=upto,
            windows=windows,
        )
        if not np.array_equal(out, single):
            raise RestoreError(
                f"sharded restore of {record_dir} across {num_ranks} ranks "
                f"diverged from the single-GPU indexed restore"
            )

        per_rank = report.per_rank_seconds()
        events: List[dict] = []
        if self.capture_events:
            gpus_per_node = self.cluster.node.gpus_per_node
            restart_run_id = f"fleet-restart-r{num_ranks}-c{report.target_ckpt}"
            per_rank_events: List[List[dict]] = []
            for shard, seconds in zip(report.shards, per_rank):
                rank_journal = EventJournal(
                    node=f"node{shard.rank // gpus_per_node}",
                    rank=shard.rank,
                    run_id=restart_run_id,
                )
                rank_journal.emit(
                    RESTORE,
                    path="sharded",
                    sim_time=seconds,
                    target_ckpt=report.target_ckpt,
                    chain_len=report.frames_total,
                    ranks=num_ranks,
                    windows=report.windows,
                    payload_bytes=shard.total_payload_bytes_read,
                    sources=shard.sources,
                    gather_seconds=seconds,
                    critical_path_seconds=report.critical_path_seconds,
                    predicted_seconds=report.predicted_seconds,
                )
                per_rank_events.append(rank_journal.records())
            events = merge_journals(per_rank_events)

        return FleetRestartResult(
            num_ranks=num_ranks,
            windows=report.windows,
            single_seconds=single_cost.seconds,
            critical_path_seconds=report.critical_path_seconds,
            read_seconds=report.cost.read_seconds,
            state_bytes=int(out.nbytes),
            per_rank_seconds=per_rank,
            events=events,
        )
