"""Distributed streaming restore: the §3.3 story for restarts.

A 64-rank fleet restoring from one shared record used to run
``restore_record_indexed`` on a single simulated GPU while 63 sat idle.
This module is the fleet path:

* **shard** — :class:`~repro.core.sharded_restore.ShardedRestorePlan`
  splits the target checkpoint's chunk range across N ranks, each
  gathering and uploading only its own byte extent on its own
  ``DeviceSpace``;
* **price** — ``KernelCostModel.price_fleet_restore`` prices each
  rank's ledger under its placement's PCIe contention
  (``ClusterSpec.pcie_contention_for``) plus one shared PFS read of the
  referenced frames;
* **overlap** — the restore-side :class:`~repro.runtime.streaming.
  StreamingScheduler` pipeline: the selective frame read for window
  *k+1* overlaps the gathers of window *k*, with ``best_window_count``
  choosing W from the cost model before execution.

The data path is unchanged (every byte still moves, windows are a
scheduling construct, output is bit-identical to the single-GPU path);
what changes is the simulated timeline — exactly the discipline the
checkpoint-side streaming scheduler established.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .. import telemetry
from ..core.sharded_restore import ShardedRestorePlan, ShardReport
from ..core.store import (
    load_provenance,
    load_record_frames,
    record_frame_sizes,
    record_index_bytes,
    record_manifest,
)
from ..errors import RestoreError
from ..gpusim.cluster import ClusterSpec, thetagpu
from ..gpusim.perfmodel import FleetRestoreCost, KernelCostModel
from ..kokkos.execution import DeviceSpace
from ..telemetry import events
from .streaming import StreamingScheduler

_FLEET_RESTORES = telemetry.counter(
    "fleet.restores", "Sharded (multi-rank) record restores executed"
)


@dataclass
class FleetRestoreReport:
    """Everything one sharded restore read, gathered, and cost."""

    target_ckpt: int
    num_ranks: int
    windows: int
    data_len: int
    frames_total: int
    frames_parsed: int
    #: Frame bytes + index bytes the shared read actually pulled.
    record_bytes_read: int
    index_bytes: int
    #: Pre-execution critical-path prediction (the window picker's view).
    predicted_seconds: float
    cost: FleetRestoreCost
    shards: List[ShardReport] = field(default_factory=list)

    @property
    def critical_path_seconds(self) -> float:
        return self.cost.critical_path_seconds

    @property
    def total_payload_bytes_read(self) -> int:
        return sum(s.total_payload_bytes_read for s in self.shards)

    def per_rank_seconds(self) -> List[float]:
        return [c.seconds for c in self.cost.per_rank]


def restore_record_sharded(
    directory,
    num_ranks: int,
    cluster: Optional[ClusterSpec] = None,
    upto: Optional[int] = None,
    windows: Optional[int] = None,
    payload_codec=None,
) -> Tuple[np.ndarray, FleetRestoreReport]:
    """Reconstruct a checkpoint from a stored record across *num_ranks*
    simulated GPUs, overlapping the shared frame read with the gathers.

    Requires the record's provenance index (fleet restarts are the
    regime the index exists for); records without one restore through
    :func:`~repro.core.provenance.restore_record_indexed`'s replay
    fallback instead.  ``windows=None`` lets the streaming scheduler
    pick the window count from the pre-execution cost estimate.
    """
    if cluster is None:
        cluster = thetagpu()
    manifest = record_manifest(directory)
    count = manifest["num_checkpoints"]
    if upto is None:
        upto = count - 1
    if not 0 <= upto < count:
        raise RestoreError(f"checkpoint {upto} outside record of {count}")

    # Selective row-group load: a sharded restore of checkpoint K never
    # decodes index groups past K.
    table = load_provenance(directory, upto=upto)
    if table is None:
        raise RestoreError(
            f"{directory} has no provenance index; sharded restore needs "
            f"one (restore_record_indexed falls back to replay)"
        )
    index = table.row(upto)

    device = cluster.node.device
    contention = cluster.pcie_contention_for(num_ranks)
    with telemetry.span(
        "restore.shard.plan", ranks=num_ranks, upto=upto
    ) as span:
        plan = ShardedRestorePlan(index, num_ranks)
        refs = [int(t) for t in index.referenced()]
        frame_sizes = record_frame_sizes(directory)
        index_bytes = record_index_bytes(directory)
        read_bytes = int(sum(frame_sizes[t] for t in refs)) + index_bytes
        read_seconds = read_bytes / cluster.pfs_bandwidth
        gather_seconds = plan.estimate_gather_seconds(device, contention)
        scheduler = StreamingScheduler(device, windows if windows else 1)
        if windows is None:
            estimate = scheduler.best_window_count_stages(
                read_seconds,
                gather_seconds,
                per_window_overhead=device.pcie_latency,
            )
            windows = estimate.windows
        else:
            estimate = scheduler.estimate_stages(
                read_seconds,
                gather_seconds,
                per_window_overhead=device.pcie_latency,
            )
        span.set(
            windows=windows,
            sources=len(refs),
            read_bytes=read_bytes,
            predicted_seconds=estimate.streamed_seconds,
        )

    # Cooperative read: every referenced frame is read once fleet-wide
    # (each rank gathers from the same host-staged payloads), priced at
    # the cluster's aggregate PFS bandwidth.
    frames = load_record_frames(directory, refs)

    def payload_of(t: int) -> np.ndarray:
        diff = frames[t]
        if payload_codec is not None and diff.method == "tree":
            return np.frombuffer(payload_codec.decompress(diff.payload), np.uint8)
        return np.frombuffer(diff.payload, dtype=np.uint8)

    spaces = [DeviceSpace(rank) for rank in range(num_ranks)]
    reports = [
        ShardReport(rank=s.rank, chunk_lo=s.chunk_lo, chunk_hi=s.chunk_hi)
        for s in plan.shards
    ]
    out = plan.materialize(
        payload_of, spaces=spaces, windows=windows, reports=reports
    )

    model = KernelCostModel(device)
    cost = model.price_fleet_restore(
        [space.ledger for space in spaces],
        restored_bytes=index.data_len,
        cluster=cluster,
        contention=contention,
        read_bytes=read_bytes,
        windows=windows,
    )
    telemetry.instant(
        "restore.overlap",
        ranks=num_ranks,
        windows=windows,
        read_seconds=cost.read_seconds,
        gather_seconds=cost.gather_critical_seconds,
        serial_seconds=cost.serial_seconds,
        critical_path_seconds=cost.critical_path_seconds,
        overlap_saving_seconds=cost.overlap_saving_seconds,
    )
    report = FleetRestoreReport(
        target_ckpt=upto,
        num_ranks=num_ranks,
        windows=windows,
        data_len=index.data_len,
        frames_total=count,
        frames_parsed=len(refs),
        record_bytes_read=read_bytes,
        index_bytes=index_bytes,
        predicted_seconds=estimate.streamed_seconds,
        cost=cost,
        shards=reports,
    )
    _FLEET_RESTORES.inc()
    events.emit(
        events.RESTORE,
        path="sharded",
        target_ckpt=upto,
        chain_len=count,
        ranks=num_ranks,
        windows=windows,
        state_bytes=int(out.nbytes),
        payload_bytes=report.total_payload_bytes_read,
        sources=len(refs),
        record_bytes_read=read_bytes,
        read_seconds=cost.read_seconds,
        gather_seconds=cost.gather_critical_seconds,
        critical_path_seconds=cost.critical_path_seconds,
        predicted_seconds=estimate.streamed_seconds,
    )
    return out, report
