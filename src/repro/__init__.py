"""repro — reproduction of *Scalable Incremental Checkpointing using
GPU-Accelerated De-Duplication* (Tan et al., ICPP 2023).

The package implements the paper's Merkle-tree de-duplication engine and
everything it is evaluated against and on top of:

* :mod:`repro.core` — the Tree method (Algorithm 1), the Full/Basic/List
  baselines, the diff wire format, and checkpoint restore;
* :mod:`repro.hashing` — bit-exact MurmurHash3 x64-128 (scalar + batch);
* :mod:`repro.kokkos` — the Kokkos-flavoured execution layer (Views,
  fused-kernel ledger, the ``UnorderedMap`` hash record);
* :mod:`repro.gpusim` — A100/PCIe/node cost model producing simulated
  throughput with the paper's shape;
* :mod:`repro.compress` — the nvCOMP-class compression baselines;
* :mod:`repro.graphs` — CSR graphs, the five Table 1 input-graph
  generators, and Gorder pre-processing;
* :mod:`repro.oranges` — the ORANGES graphlet-degree-vector application
  that drives every experiment;
* :mod:`repro.runtime` — the multi-level asynchronous flush hierarchy and
  the strong-scaling driver.

Quickstart::

    import numpy as np
    from repro import IncrementalCheckpointer

    buf = np.zeros(1 << 20, dtype=np.uint8)
    ckpt = IncrementalCheckpointer(data_len=buf.nbytes, chunk_size=128)
    ckpt.checkpoint(buf)              # full first checkpoint
    buf[1000:1128] = 7
    stats = ckpt.checkpoint(buf)      # tiny incremental diff
    assert np.array_equal(ckpt.restore(1), buf)
"""

from .core import (
    BasicDedup,
    CheckpointDiff,
    CheckpointRecord,
    CheckpointStats,
    FullCheckpoint,
    IncrementalCheckpointer,
    ListDedup,
    Restorer,
    TreeDedup,
    restore_latest,
)
from .compress import CompressionCheckpointer, get_codec, list_codecs
from .errors import (
    CapacityError,
    ChunkingError,
    CompressionError,
    ConfigurationError,
    GraphError,
    ReproError,
    RestoreError,
    SerializationError,
    SimulationError,
    StorageError,
)
from .oranges import OrangesApp
from .version import __version__

__all__ = [
    "BasicDedup",
    "CheckpointDiff",
    "CheckpointRecord",
    "CheckpointStats",
    "FullCheckpoint",
    "IncrementalCheckpointer",
    "ListDedup",
    "Restorer",
    "TreeDedup",
    "restore_latest",
    "CompressionCheckpointer",
    "get_codec",
    "list_codecs",
    "OrangesApp",
    "CapacityError",
    "ChunkingError",
    "CompressionError",
    "ConfigurationError",
    "GraphError",
    "ReproError",
    "RestoreError",
    "SerializationError",
    "SimulationError",
    "StorageError",
    "__version__",
]
