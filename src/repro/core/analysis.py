"""Checkpoint-record analytics.

Answers the questions the paper's evaluation keeps asking of a record —
how is each diff composed (fixed / first / shifted bytes), how large are
the consolidated regions, where do shifted duplicates point — as plain
data structures, so benches, examples and tests share one implementation
instead of ad-hoc instrumentation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import RestoreError
from .chunking import ChunkSpec
from .diff import CheckpointDiff
from .merkle import TreeLayout
from .serialize import unpack_bitmap


@dataclass
class DiffComposition:
    """Byte-level composition of one diff."""

    ckpt_id: int
    method: str
    data_len: int
    #: Bytes stored as first-occurrence payload.
    first_bytes: int
    #: Bytes covered by shifted-duplicate references.
    shift_bytes: int
    #: Bytes untouched (fixed duplicates / implicit).
    fixed_bytes: int
    metadata_bytes: int
    stored_bytes: int
    #: Region-size histogram (chunks per region) for first/shift regions.
    first_region_chunks: Counter = field(default_factory=Counter)
    shift_region_chunks: Counter = field(default_factory=Counter)
    #: Referenced checkpoint → number of shifted regions pointing there.
    shift_targets: Counter = field(default_factory=Counter)

    @property
    def changed_fraction(self) -> float:
        """Share of the buffer not fixed."""
        return (self.first_bytes + self.shift_bytes) / self.data_len

    @property
    def consolidation_factor(self) -> Optional[float]:
        """Chunks covered per metadata entry (higher = better compaction).

        ``None`` when the diff carries no regions at all (nothing changed),
        so JSON consumers see ``null`` instead of a non-serializable inf.
        """
        entries = sum(self.first_region_chunks.values()) + sum(
            self.shift_region_chunks.values()
        )
        if entries == 0:
            return None
        chunks = sum(k * v for k, v in self.first_region_chunks.items()) + sum(
            k * v for k, v in self.shift_region_chunks.items()
        )
        return chunks / entries


def analyze_diff(
    diff: CheckpointDiff, layout: Optional[TreeLayout] = None
) -> DiffComposition:
    """Compute the composition of one diff."""
    spec = ChunkSpec(diff.data_len, diff.chunk_size)
    comp = DiffComposition(
        ckpt_id=diff.ckpt_id,
        method=diff.method,
        data_len=diff.data_len,
        first_bytes=0,
        shift_bytes=0,
        fixed_bytes=0,
        metadata_bytes=diff.metadata_bytes,
        stored_bytes=diff.serialized_size,
    )

    if diff.method == "full":
        comp.first_bytes = diff.data_len
        comp.first_region_chunks[spec.num_chunks] = 1
    elif diff.method == "basic":
        changed = unpack_bitmap(diff.bitmap, spec.num_chunks)
        for chunk in np.nonzero(changed)[0]:
            b0, b1 = spec.chunk_bounds(int(chunk))
            comp.first_bytes += b1 - b0
            comp.first_region_chunks[1] += 1
    else:
        if diff.method == "tree":
            if layout is None:
                layout = TreeLayout(spec.num_chunks)

            def extent(node: int):
                count = int(layout.leaf_count[node])
                b0, b1 = spec.range_bounds(int(layout.leaf_start[node]), count)
                return count, b1 - b0

        else:

            def extent(node: int):
                b0, b1 = spec.chunk_bounds(node)
                return 1, b1 - b0

        for node in diff.first_ids:
            chunks, nbytes = extent(int(node))
            comp.first_bytes += nbytes
            comp.first_region_chunks[chunks] += 1
        for i in range(diff.num_shift):
            chunks, nbytes = extent(int(diff.shift_ids[i]))
            comp.shift_bytes += nbytes
            comp.shift_region_chunks[chunks] += 1
            comp.shift_targets[int(diff.shift_ref_ckpts[i])] += 1

    comp.fixed_bytes = diff.data_len - comp.first_bytes - comp.shift_bytes
    return comp


def analyze_record(diffs: Sequence[CheckpointDiff]) -> List[DiffComposition]:
    """Composition of every diff in a record (shared tree layout)."""
    if not diffs:
        return []
    layout: Optional[TreeLayout] = None
    out = []
    for diff in diffs:
        if diff.method == "tree" and layout is None:
            layout = TreeLayout(ChunkSpec(diff.data_len, diff.chunk_size).num_chunks)
        out.append(analyze_diff(diff, layout))
    return out


def composition_report(diffs: Sequence[CheckpointDiff]) -> str:
    """Human-readable per-checkpoint composition table."""
    rows = analyze_record(diffs)
    lines = [
        f"{'ckpt':>4s} {'method':<7s} {'fixed%':>7s} {'first%':>7s} "
        f"{'shift%':>7s} {'regions':>8s} {'consol':>7s} {'stored':>10s}"
    ]
    for c in rows:
        regions = sum(c.first_region_chunks.values()) + sum(
            c.shift_region_chunks.values()
        )
        consol = c.consolidation_factor
        lines.append(
            f"{c.ckpt_id:>4d} {c.method:<7s} "
            f"{100 * c.fixed_bytes / c.data_len:>6.1f}% "
            f"{100 * c.first_bytes / c.data_len:>6.1f}% "
            f"{100 * c.shift_bytes / c.data_len:>6.1f}% "
            f"{regions:>8d} "
            f"{'—' if consol is None else f'{consol:.2f}':>7s} "
            f"{c.stored_bytes:>10,d}"
        )
    return "\n".join(lines)


def verify_chain(diffs: Sequence[CheckpointDiff]) -> List[str]:
    """Structural integrity checks over a diff chain.

    Returns a list of problem descriptions (empty = chain is sound):
    ordering, stable geometry, region bounds, non-overlap, payload
    lengths, and reference validity.  Used by tests and the CLI.

    Payload-length checks assume raw payloads; records produced with a
    ``payload_codec`` (the hybrid mode) should be verified after
    decompressing, or their payload-length findings ignored.
    """
    problems: List[str] = []
    if not diffs:
        return ["chain is empty"]
    data_len = diffs[0].data_len
    chunk_size = diffs[0].chunk_size
    layout: Optional[TreeLayout] = None

    for position, diff in enumerate(diffs):
        where = f"ckpt {position}"
        if diff.ckpt_id != position:
            problems.append(f"{where}: out-of-order id {diff.ckpt_id}")
            continue
        if diff.data_len != data_len or diff.chunk_size != chunk_size:
            problems.append(f"{where}: geometry changed mid-chain")
            continue
        spec = ChunkSpec(diff.data_len, diff.chunk_size)

        if diff.method == "full":
            if diff.payload_bytes != data_len:
                problems.append(f"{where}: full payload length mismatch")
            continue
        if diff.method == "basic":
            try:
                changed = unpack_bitmap(diff.bitmap, spec.num_chunks)
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                problems.append(f"{where}: bad bitmap ({exc})")
                continue
            expect = sum(
                spec.chunk_len(int(c)) for c in np.nonzero(changed)[0]
            )
            if diff.payload_bytes != expect:
                problems.append(f"{where}: basic payload length mismatch")
            continue

        if diff.method == "tree" and layout is None:
            layout = TreeLayout(spec.num_chunks)

        def bounds(node: int):
            if diff.method == "tree":
                if not 0 <= node < layout.num_nodes:
                    return None
                return spec.range_bounds(
                    int(layout.leaf_start[node]), int(layout.leaf_count[node])
                )
            if not 0 <= node < spec.num_chunks:
                return None
            return spec.chunk_bounds(node)

        covered = np.zeros(data_len, dtype=bool)
        payload_expect = 0
        ok = True
        for node in diff.first_ids:
            span = bounds(int(node))
            if span is None:
                problems.append(f"{where}: first id {int(node)} out of range")
                ok = False
                continue
            if covered[span[0] : span[1]].any():
                problems.append(f"{where}: overlapping regions at {span}")
                ok = False
            covered[span[0] : span[1]] = True
            payload_expect += span[1] - span[0]
        for i in range(diff.num_shift):
            span = bounds(int(diff.shift_ids[i]))
            src = bounds(int(diff.shift_ref_ids[i]))
            if span is None or src is None:
                problems.append(f"{where}: shift entry {i} out of range")
                ok = False
                continue
            if covered[span[0] : span[1]].any():
                problems.append(f"{where}: overlapping regions at {span}")
                ok = False
            covered[span[0] : span[1]] = True
            if src[1] - src[0] != span[1] - span[0]:
                problems.append(f"{where}: shift entry {i} length mismatch")
                ok = False
            if int(diff.shift_ref_ckpts[i]) > position:
                problems.append(f"{where}: shift entry {i} references the future")
                ok = False
        if ok and diff.payload_bytes != payload_expect:
            problems.append(
                f"{where}: payload is {diff.payload_bytes} B, regions demand "
                f"{payload_expect} B"
            )
    return problems
