"""Region labels used by the de-duplication passes (Algorithm 1).

Every tree node carries one label per checkpoint:

* ``FIXED_DUPL``  — content identical to the *same position* in the
  previous checkpoint; contributes nothing to the diff.
* ``FIRST_OCUR``  — content never seen before anywhere in the checkpoint
  record; its chunks are stored and its digest enters the historical map.
* ``SHIFT_DUPL``  — content that duplicates a *different position* (same
  or earlier checkpoint); stored as a reference, no payload.
* ``MIXED``       — interior-node marker meaning "children disagree; the
  subtree has already been emitted below me".  Not part of the paper's
  label set, but the natural sentinel for the level-by-level sweep.
* ``UNLABELED``   — initial state.
"""

from __future__ import annotations

import numpy as np

#: Label values (uint8).  Order matters only for readability.
UNLABELED = np.uint8(0)
FIXED_DUPL = np.uint8(1)
FIRST_OCUR = np.uint8(2)
SHIFT_DUPL = np.uint8(3)
MIXED = np.uint8(4)

LABEL_NAMES = {
    int(UNLABELED): "UNLABELED",
    int(FIXED_DUPL): "FIXED_DUPL",
    int(FIRST_OCUR): "FIRST_OCUR",
    int(SHIFT_DUPL): "SHIFT_DUPL",
    int(MIXED): "MIXED",
}


def label_name(value: int) -> str:
    """Human-readable name of a label value."""
    return LABEL_NAMES.get(int(value), f"?{value}")


def new_label_array(num_nodes: int) -> np.ndarray:
    """Fresh all-``UNLABELED`` label array for one checkpoint pass."""
    return np.zeros(num_nodes, dtype=np.uint8)


def count_labels(labels: np.ndarray) -> dict:
    """Histogram of label names → counts (diagnostics and tests)."""
    values, counts = np.unique(labels, return_counts=True)
    return {label_name(v): int(c) for v, c in zip(values, counts)}
