"""Checkpoint-lineage retention: dependency analysis and rebasing.

The paper's scenarios keep *the entire checkpoint record* (§1), which
grows without bound.  Deployments eventually truncate history; this
module provides the two primitives that make truncation safe:

* :func:`payload_dependencies` — which diffs' *payloads* are actually
  needed to materialise a given checkpoint (metadata of every earlier
  diff is always needed to resolve fixed pass-through, but payloads of
  untouched diffs can live on cold storage or be dropped by a rebase);

* :func:`rebase_record` — rewrite the chain so checkpoint *at* becomes a
  new full checkpoint 0 and every later diff is remapped onto the new
  numbering.  Shifted-duplicate references into the discarded prefix are
  *materialised*: the referenced bytes are copied out of the
  reconstruction and stored as first-occurrence payload in the rewritten
  diff.  The rebased chain reconstructs byte-identically to the original
  for every surviving checkpoint (property-tested).

A rebase invalidates any provenance index built over the old chain:
checkpoint ids shift, and promoting shift references into
first-occurrence payload changes payload offsets.  ``rebase_record``
therefore composes the *new* chain's :class:`~repro.core.provenance.
ProvenanceTable` while it rewrites (``with_index=True``), and
:func:`rebase_stored_record` rewrites a stored record directory — frames,
manifest, *and* ``provenance.rpix`` — atomically with respect to the
index, journaling a ``rebase`` event when it does.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..errors import ReproError, RestoreError
from ..telemetry import events
from .chunking import ChunkSpec
from .diff import CheckpointDiff
from .merkle import TreeLayout
from .restore import Restorer
from .selective import SelectiveRestorer


def payload_dependencies(
    diffs: Sequence[CheckpointDiff], upto: Optional[int] = None
) -> Set[int]:
    """Checkpoint ids whose payload bytes contribute to checkpoint *upto*."""
    _, plan = SelectiveRestorer().restore(diffs, upto)
    return set(plan.payload_bytes_read)


def required_payloads(
    diffs: Sequence[CheckpointDiff], keep: Sequence[int]
) -> Set[int]:
    """Union of payload dependencies over every checkpoint in *keep*."""
    needed: Set[int] = set()
    for k in keep:
        needed |= payload_dependencies(diffs, k)
    return needed


def rebase_record(
    diffs: Sequence[CheckpointDiff],
    at: int,
    payload_codec=None,
    with_index: bool = False,
):
    """Truncate history before checkpoint *at*.

    Returns a new chain whose checkpoint 0 is a full image of the old
    checkpoint *at*; old checkpoints ``at+1 .. end`` follow with their
    ids shifted down by *at*.  Later diffs are rewritten:

    * shift references to checkpoints ≥ *at* are renumbered;
    * shift references into the discarded prefix (< *at*) are converted
      to first-occurrence regions whose bytes are copied from the full
      reconstruction — the only way to keep them restorable once the
      prefix is gone.

    Only raw-payload records are supported (rebase rewrites payloads, so
    a ``payload_codec`` must be supplied to decode/encode hybrid ones).

    With ``with_index=True`` the return value is ``(chain, table)``: the
    rewrite also composes the new chain's
    :class:`~repro.core.provenance.ProvenanceTable`, because any index
    built over the *old* chain is invalid after a rebase (ids shift,
    promoted shift references move payload offsets).  ``table`` is
    ``None`` only if the rewritten chain itself is unindexable.
    """
    if not 0 <= at < len(diffs):
        raise RestoreError(f"rebase point {at} outside chain of {len(diffs)}")
    restorer = Restorer(payload_codec=payload_codec)
    states = restorer.restore_all(diffs)

    out: List[CheckpointDiff] = [
        CheckpointDiff(
            method="full",
            ckpt_id=0,
            data_len=diffs[at].data_len,
            chunk_size=diffs[at].chunk_size,
            payload=states[at].tobytes(),
        )
    ]
    layout: Optional[TreeLayout] = None
    for old_id in range(at + 1, len(diffs)):
        out.append(
            _rewrite_diff(diffs[old_id], at, states[old_id], layout, payload_codec)
        )
    if not with_index:
        return out
    from .provenance import ProvenanceTable  # local: retention ↔ provenance

    try:
        table = ProvenanceTable.from_diffs(out)
    except ReproError:
        table = None
    return out, table


def rebase_stored_record(
    directory: Union[str, Path], at: int, payload_codec=None
) -> Path:
    """Rebase a *stored* record directory in place, index included.

    Loads the record, rewrites the chain with :func:`rebase_record`
    (composing the new chain's provenance table during the rewrite),
    replaces the frames/manifest/``provenance.rpix`` on disk, and emits a
    ``rebase`` journal event recording that the index was rewritten.
    The old frames are removed first: the rebased chain is shorter and
    renumbered, so nothing of the old layout may survive.
    """
    from .store import load_record, record_manifest, save_record

    path = Path(directory)
    manifest = record_manifest(path)
    diffs = load_record(path)
    new_diffs, table = rebase_record(diffs, at, payload_codec, with_index=True)

    for frame in sorted(path.glob("ckpt-*.rdif")):
        frame.unlink()
    (path / "record.json").unlink()
    old_index = path / "provenance.rpix"
    index_existed = old_index.exists()
    if index_existed:
        old_index.unlink()

    save_record(new_diffs, path, method=manifest.get("method", ""), provenance=table)
    events.emit(
        events.REBASE,
        path=str(path),
        at=at,
        old_checkpoints=len(diffs),
        new_checkpoints=len(new_diffs),
        index_rewritten=table is not None,
        index_existed=index_existed,
    )
    return path


def _rewrite_diff(
    diff: CheckpointDiff,
    at: int,
    state: np.ndarray,
    layout: Optional[TreeLayout],
    payload_codec,
) -> CheckpointDiff:
    new_id = diff.ckpt_id - at
    if diff.method in ("full", "basic"):
        # Position-relative methods never reference other checkpoints.
        return CheckpointDiff(
            method=diff.method,
            ckpt_id=new_id,
            data_len=diff.data_len,
            chunk_size=diff.chunk_size,
            bitmap=diff.bitmap,
            payload=diff.payload,
        )

    spec = ChunkSpec(diff.data_len, diff.chunk_size)
    if diff.method == "tree":
        if layout is None:
            layout = TreeLayout(spec.num_chunks)

        def bounds(node: int):
            return spec.range_bounds(
                int(layout.leaf_start[node]), int(layout.leaf_count[node])
            )

    else:

        def bounds(node: int):
            return spec.chunk_bounds(node)

    keep_mask = diff.shift_ref_ckpts.astype(np.int64) >= at
    promoted = diff.shift_ids[~keep_mask]

    # New first set = old firsts + promoted shifts; payload gathered from
    # the reconstructed state in the id order of the merged array.
    raw_payload = diff.payload
    if payload_codec is not None:
        raw_payload = payload_codec.decompress(raw_payload)
    old_payload = np.frombuffer(raw_payload, dtype=np.uint8)

    first_ids = np.concatenate(
        [diff.first_ids.astype(np.int64), promoted.astype(np.int64)]
    )
    order = np.argsort(first_ids, kind="stable")
    first_ids = first_ids[order]
    parts: List[bytes] = []
    # Offsets of the ORIGINAL firsts within the old payload.
    old_offsets: Dict[int, int] = {}
    cursor = 0
    for node in diff.first_ids:
        b0, b1 = bounds(int(node))
        old_offsets[int(node)] = cursor
        cursor += b1 - b0
    promoted_set = {int(n) for n in promoted}
    for node in first_ids:
        b0, b1 = bounds(int(node))
        if int(node) in promoted_set:
            parts.append(state[b0:b1].tobytes())
        else:
            off = old_offsets[int(node)]
            parts.append(old_payload[off : off + (b1 - b0)].tobytes())
    payload = b"".join(parts)
    if payload_codec is not None:
        payload = payload_codec.compress(payload)

    return CheckpointDiff(
        method=diff.method,
        ckpt_id=new_id,
        data_len=diff.data_len,
        chunk_size=diff.chunk_size,
        first_ids=first_ids,
        shift_ids=diff.shift_ids[keep_mask],
        shift_ref_ids=diff.shift_ref_ids[keep_mask],
        shift_ref_ckpts=diff.shift_ref_ckpts[keep_mask].astype(np.int64) - at,
        payload=payload,
    )
