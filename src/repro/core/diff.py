"""On-wire checkpoint-diff format.

A diff is what one process ships to host memory per checkpoint: a small
header, method-specific metadata, and the payload of first-occurrence
chunk bytes (§2.1's "consolidated difference").  All four methods of the
paper's evaluation share the container:

* ``full``  — no metadata; payload is the entire checkpoint.
* ``basic`` — a changed-chunk bitmap; payload is the changed chunks.
* ``list``  — per-chunk entries: first-occurrence chunk ids and
  shifted-duplicate triples ``(chunk, ref_chunk, ref_ckpt)``; payload is
  the first-occurrence chunks.
* ``tree``  — per-*region* entries: first-occurrence node ids and
  shifted-duplicate triples ``(node, ref_node, ref_ckpt)`` over the flat
  Merkle tree; payload is the first-occurrence regions.

Metadata entries use 4-byte ids on the wire (u32 node/chunk/checkpoint
ids), which is what the paper's metadata-size comparison counts.  The
binary encoding is little-endian and versioned; ``from_bytes`` round-trips
``to_bytes`` exactly, and ``serialized_size`` predicts the encoded length
without materialising it (the dedup engines use it to meter the D2H
transfer).

Format v2 adds integrity to the frame: a 32-byte SHA-256 content digest
sits directly after the fixed header and covers every other byte of the
frame (header + metadata + payload).  ``from_bytes`` recomputes it and
raises :class:`~repro.errors.IntegrityError` on mismatch, so a bit flip
anywhere in a stored ``.rdif`` file is detected at parse time.  v1 frames
(no digest) still parse; they come back flagged ``verified=False`` so
callers can report them as *unverified* rather than silently trusting
them.  See ``docs/FAULT_MODEL.md`` for the full frame layout.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import IntegrityError, SerializationError
from ..utils.validation import non_negative_int, one_of, positive_int

_MAGIC = b"RDIF"
_VERSION = 2
_V1 = 1
_HEADER = struct.Struct("<4sHBBIQIIIIQ")
# magic, version, method, flags, ckpt_id, data_len, chunk_size,
# n_first, n_shift, bitmap_bytes, payload_len

#: Bytes of the v2 per-frame content digest (SHA-256), stored directly
#: after the fixed header.
DIGEST_BYTES = 32

METHODS = ("full", "basic", "list", "tree")
_METHOD_CODE = {name: i for i, name in enumerate(METHODS)}

#: Wire width of one first-occurrence metadata entry (u32 id).
FIRST_ENTRY_BYTES = 4
#: Wire width of one shifted-duplicate entry (u32 id, u32 ref id, u32 ckpt).
SHIFT_ENTRY_BYTES = 12


def _as_u32(arr: Optional[np.ndarray], name: str) -> np.ndarray:
    if arr is None:
        return np.empty(0, dtype=np.uint32)
    out = np.asarray(arr)
    if out.ndim != 1:
        raise SerializationError(f"{name} must be 1-D, got shape {out.shape}")
    if out.size and (out.min() < 0 or out.max() > np.iinfo(np.uint32).max):
        raise SerializationError(f"{name} contains values outside u32 range")
    return out.astype(np.uint32)


@dataclass
class CheckpointDiff:
    """One serialized incremental checkpoint.

    ``first_ids``/``shift_*`` are node ids for the tree method and chunk
    ids for the list method; ``bitmap`` is only present for the basic
    method.  ``payload`` holds the concatenated first-occurrence bytes in
    the order of ``first_ids`` (changed chunks in ascending order for
    basic; the whole buffer for full).
    """

    method: str
    ckpt_id: int
    data_len: int
    chunk_size: int
    first_ids: np.ndarray = field(default_factory=lambda: np.empty(0, np.uint32))
    shift_ids: np.ndarray = field(default_factory=lambda: np.empty(0, np.uint32))
    shift_ref_ids: np.ndarray = field(default_factory=lambda: np.empty(0, np.uint32))
    shift_ref_ckpts: np.ndarray = field(default_factory=lambda: np.empty(0, np.uint32))
    bitmap: Optional[np.ndarray] = None  # packed uint8, basic method only
    payload: bytes = b""
    #: Integrity provenance: ``None`` for locally built diffs, ``True``
    #: when parsed from a v2 frame whose digest matched, ``False`` when
    #: parsed from a digestless v1 frame (*unverified*).
    verified: Optional[bool] = field(default=None, compare=False)
    #: Lazily cached SHA-256 hex of :meth:`to_bytes` — the on-disk frame
    #: digest the record manifest stores.  Engines never mutate a diff
    #: after building it; anything that does must clear this cache.
    _frame_digest: Optional[str] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        one_of(self.method, METHODS, "method")
        non_negative_int(self.ckpt_id, "ckpt_id")
        positive_int(self.data_len, "data_len")
        positive_int(self.chunk_size, "chunk_size")
        self.first_ids = _as_u32(self.first_ids, "first_ids")
        self.shift_ids = _as_u32(self.shift_ids, "shift_ids")
        self.shift_ref_ids = _as_u32(self.shift_ref_ids, "shift_ref_ids")
        self.shift_ref_ckpts = _as_u32(self.shift_ref_ckpts, "shift_ref_ckpts")
        if not (
            self.shift_ids.shape
            == self.shift_ref_ids.shape
            == self.shift_ref_ckpts.shape
        ):
            raise SerializationError("shift metadata arrays must share a length")
        if self.bitmap is not None:
            self.bitmap = np.asarray(self.bitmap, dtype=np.uint8)
        if self.method == "basic" and self.bitmap is None:
            raise SerializationError("basic diffs require a bitmap")
        if self.method != "basic" and self.bitmap is not None:
            raise SerializationError(f"{self.method} diffs must not carry a bitmap")

    # ------------------------------------------------------------------
    # Size accounting (the paper's metadata-vs-data breakdown)
    # ------------------------------------------------------------------
    @property
    def num_first(self) -> int:
        """Count of first-occurrence metadata entries."""
        return int(self.first_ids.shape[0])

    @property
    def num_shift(self) -> int:
        """Count of shifted-duplicate metadata entries."""
        return int(self.shift_ids.shape[0])

    @property
    def referenced_checkpoints(self) -> np.ndarray:
        """Unique checkpoint ids this diff's shifted duplicates read from.

        Restore needs exactly these earlier checkpoints (plus the previous
        one for fixed duplicates) to apply this diff — the window that
        :meth:`~repro.core.restore.Restorer.restore` keeps in memory.
        """
        if self.num_shift == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(self.shift_ref_ckpts.astype(np.int64))

    @property
    def metadata_bytes(self) -> int:
        """Bytes of method metadata on the wire (excluding the header)."""
        total = self.num_first * FIRST_ENTRY_BYTES + self.num_shift * SHIFT_ENTRY_BYTES
        if self.bitmap is not None:
            total += self.bitmap.nbytes
        return total

    @property
    def payload_bytes(self) -> int:
        """Bytes of stored chunk content."""
        return len(self.payload)

    @property
    def header_bytes(self) -> int:
        """Fixed frame overhead: header plus the v2 content digest."""
        return _HEADER.size + DIGEST_BYTES

    @property
    def serialized_size(self) -> int:
        """Exact length of :meth:`to_bytes` output."""
        return self.header_bytes + self.metadata_bytes + self.payload_bytes

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def _body_bytes(self) -> bytes:
        """Metadata + payload, the variable part of the frame."""
        parts = [self.first_ids.astype("<u4").tobytes()]
        shift = np.empty((self.num_shift, 3), dtype="<u4")
        shift[:, 0] = self.shift_ids
        shift[:, 1] = self.shift_ref_ids
        shift[:, 2] = self.shift_ref_ckpts
        parts.append(shift.tobytes())
        if self.bitmap is not None:
            parts.append(self.bitmap.tobytes())
        parts.append(self.payload)
        return b"".join(parts)

    def _pack_header(self) -> bytes:
        bitmap_bytes = self.bitmap.nbytes if self.bitmap is not None else 0
        return _HEADER.pack(
            _MAGIC,
            _VERSION,
            _METHOD_CODE[self.method],
            0,
            self.ckpt_id,
            self.data_len,
            self.chunk_size,
            self.num_first,
            self.num_shift,
            bitmap_bytes,
            len(self.payload),
        )

    def content_digest(self) -> bytes:
        """SHA-256 over the frame minus its digest field (header + body)."""
        h = hashlib.sha256()
        h.update(self._pack_header())
        h.update(self._body_bytes())
        return h.digest()

    def frame_digest(self) -> str:
        """SHA-256 hex of the full serialized frame, cached after first use.

        This is the digest the record manifest holds per ``.rdif`` file;
        caching it is what makes the append guard O(1) — comparing a new
        chain against a stored record no longer re-serializes the prefix.
        """
        if self._frame_digest is None:
            self._frame_digest = hashlib.sha256(self.to_bytes()).hexdigest()
        return self._frame_digest

    def to_bytes(self) -> bytes:
        """Serialize to the versioned little-endian wire format (v2)."""
        header = self._pack_header()
        body = self._body_bytes()
        digest = hashlib.sha256(header + body).digest()
        out = header + digest + body
        if len(out) != self.serialized_size:  # pragma: no cover - invariant
            raise SerializationError(
                f"encoded size {len(out)} != predicted {self.serialized_size}"
            )
        return out

    @classmethod
    def from_bytes(cls, blob: bytes, verify: bool = True) -> "CheckpointDiff":
        """Parse a diff previously produced by :meth:`to_bytes`.

        Both format versions are accepted: v2 frames carry a content
        digest that is recomputed here (mismatch raises
        :class:`~repro.errors.IntegrityError` unless *verify* is false);
        v1 frames have none and come back with ``verified=False``.
        """
        if len(blob) < _HEADER.size:
            raise SerializationError(f"diff blob too short ({len(blob)} bytes)")
        (
            magic,
            version,
            method_code,
            _flags,
            ckpt_id,
            data_len,
            chunk_size,
            n_first,
            n_shift,
            bitmap_bytes,
            payload_len,
        ) = _HEADER.unpack_from(blob, 0)
        if magic != _MAGIC:
            raise SerializationError(f"bad magic {magic!r}")
        if version not in (_V1, _VERSION):
            raise SerializationError(f"unsupported diff version {version}")
        if method_code >= len(METHODS):
            raise SerializationError(f"unknown method code {method_code}")
        method = METHODS[method_code]

        off = _HEADER.size
        stored_digest = None
        if version == _VERSION:
            if len(blob) < off + DIGEST_BYTES:
                raise SerializationError(
                    f"diff blob too short for v2 digest ({len(blob)} bytes)"
                )
            stored_digest = blob[off : off + DIGEST_BYTES]
            off += DIGEST_BYTES
        need = off + 4 * n_first + 12 * n_shift + bitmap_bytes + payload_len
        if len(blob) != need:
            raise SerializationError(
                f"diff blob length {len(blob)} != expected {need}"
            )
        if stored_digest is not None and verify:
            actual = hashlib.sha256()
            actual.update(blob[: _HEADER.size])
            actual.update(blob[_HEADER.size + DIGEST_BYTES :])
            if actual.digest() != stored_digest:
                raise IntegrityError(
                    f"checkpoint {ckpt_id}: frame digest mismatch "
                    f"(stored {stored_digest.hex()[:16]}…, "
                    f"computed {actual.hexdigest()[:16]}…)",
                    ckpt_id=ckpt_id,
                )
        first_ids = np.frombuffer(blob, dtype="<u4", count=n_first, offset=off).copy()
        off += 4 * n_first
        shift = (
            np.frombuffer(blob, dtype="<u4", count=3 * n_shift, offset=off)
            .reshape(n_shift, 3)
            .copy()
        )
        off += 12 * n_shift
        bitmap = None
        if method == "basic":
            bitmap = np.frombuffer(
                blob, dtype=np.uint8, count=bitmap_bytes, offset=off
            ).copy()
        off += bitmap_bytes
        payload = blob[off : off + payload_len]
        if version == _V1:
            verified: Optional[bool] = False
        else:
            verified = True if verify else None
        return cls(
            method=method,
            ckpt_id=ckpt_id,
            data_len=data_len,
            chunk_size=chunk_size,
            first_ids=first_ids,
            shift_ids=shift[:, 0],
            shift_ref_ids=shift[:, 1],
            shift_ref_ckpts=shift[:, 2],
            bitmap=bitmap,
            payload=payload,
            verified=verified,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CheckpointDiff {self.method} #{self.ckpt_id} "
            f"first={self.num_first} shift={self.num_shift} "
            f"payload={self.payload_bytes}B total={self.serialized_size}B>"
        )


def encode_legacy_v1(diff: CheckpointDiff) -> bytes:
    """Encode *diff* in the pre-integrity v1 frame (no content digest).

    New code always writes v2; this exists so compatibility tests and
    migration tooling can produce records identical to ones written
    before the format bump.
    """
    bitmap_bytes = diff.bitmap.nbytes if diff.bitmap is not None else 0
    header = _HEADER.pack(
        _MAGIC,
        _V1,
        _METHOD_CODE[diff.method],
        0,
        diff.ckpt_id,
        diff.data_len,
        diff.chunk_size,
        diff.num_first,
        diff.num_shift,
        bitmap_bytes,
        len(diff.payload),
    )
    return header + diff._body_bytes()
