"""Flat-array Merkle tree over checkpoint chunks.

The paper stores the (potentially incomplete) binary hash tree "in a
flattened array and identif[ies] parent-child relationships using simple
formulas based on the offset in the array" (§2.4).  This module implements
that layout for an arbitrary leaf count *n*:

* the tree has ``2n - 1`` nodes in heap order — children of node ``i`` are
  ``2i + 1`` and ``2i + 2``;
* leaves appear **in data order** under an in-order threading: with
  ``h = ceil(log2 n)``, the first ``d = 2n - 2**h`` chunks live on the
  deepest level starting at index ``2**h - 1`` and the remaining chunks
  live one level up, immediately after the deep leaves' parents.

This is the standard "complete binary tree with in-order leaves": every
node covers a *contiguous* chunk range, which is exactly the property the
compact-metadata algorithm needs (a consolidated region must describe
adjacent chunks, §2.2).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import ChunkingError
from ..hashing.digest import check_digests
from ..hashing.murmur3 import hash_digest_pairs
from ..utils.validation import positive_int


class TreeLayout:
    """Index arithmetic and precomputed maps for an *n*-leaf flat tree."""

    def __init__(self, num_leaves: int) -> None:
        positive_int(num_leaves, "num_leaves")
        self.num_leaves = num_leaves
        self.num_nodes = 2 * num_leaves - 1
        # Height of the deepest level; a perfect tree of 2**height leaves.
        height = 0
        while (1 << height) < num_leaves:
            height += 1
        self.height = height
        #: Index of the leftmost slot on the deepest level.
        self.deep_start = (1 << height) - 1
        #: Number of leaves on the deepest level.
        self.deep_leaves = 2 * num_leaves - (1 << height)
        #: Index of the first *leaf* on the shallow (height-1) level.
        self.shallow_start = ((1 << height) - 1) // 2 + self.deep_leaves // 2 \
            if height > 0 else 0

        # leaf (chunk index, data order) -> node index
        chunks = np.arange(num_leaves, dtype=np.int64)
        node_of = np.where(
            chunks < self.deep_leaves,
            self.deep_start + chunks,
            self.shallow_start + (chunks - self.deep_leaves),
        )
        self.node_of_leaf = node_of

        # node index -> leaf (chunk) index, or -1 for interior nodes
        leaf_of = np.full(self.num_nodes, -1, dtype=np.int64)
        leaf_of[node_of] = chunks
        self.leaf_of_node = leaf_of

        # Contiguous chunk coverage per node: [leaf_start, leaf_start+leaf_count)
        # and, in the same bottom-up sweep, the per-level interior/child
        # index cache the dedup passes iterate every checkpoint.
        leaf_start = np.zeros(self.num_nodes, dtype=np.int64)
        leaf_count = np.zeros(self.num_nodes, dtype=np.int64)
        leaf_start[node_of] = chunks
        leaf_count[node_of] = 1
        self._interior_levels: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for lo, hi in reversed(self.level_ranges()):
            nodes = np.arange(lo, hi, dtype=np.int64)
            interior = nodes[leaf_of[lo:hi] < 0]
            if interior.size:
                left = 2 * interior + 1
                right = 2 * interior + 2
                self._interior_levels.append((interior, left, right))
                leaf_start[interior] = leaf_start[left]
                leaf_count[interior] = leaf_count[left] + leaf_count[right]
                # Children of an interior node must be adjacent regions.
                bad = leaf_start[right] != leaf_start[left] + leaf_count[left]
                if bad.any():  # pragma: no cover - layout invariant
                    raise ChunkingError("tree layout produced non-adjacent children")
        self._interior_only = [lvl[0] for lvl in self._interior_levels]
        self.leaf_start = leaf_start
        self.leaf_count = leaf_count

    # ------------------------------------------------------------------
    # Formulas
    # ------------------------------------------------------------------
    @staticmethod
    def parent(node: int) -> int:
        """Parent index of *node* (root has no parent)."""
        if node <= 0:
            raise ChunkingError("root node has no parent")
        return (node - 1) // 2

    @staticmethod
    def children(node: int) -> Tuple[int, int]:
        """Child indices ``(left, right)`` of *node*."""
        return 2 * node + 1, 2 * node + 2

    def is_leaf(self, node: int) -> bool:
        """Whether flat index *node* is a leaf."""
        return self.leaf_of_node[node] >= 0

    def level_ranges(self) -> List[Tuple[int, int]]:
        """Index ranges ``[lo, hi)`` per depth, root level first.

        Heap order guarantees level *k* occupies ``[2**k - 1, 2**(k+1) - 1)``
        clipped to the node count.
        """
        out = []
        k = 0
        while (1 << k) - 1 < self.num_nodes:
            lo = (1 << k) - 1
            hi = min((1 << (k + 1)) - 1, self.num_nodes)
            out.append((lo, hi))
            k += 1
        return out

    def interior_levels_bottom_up(self) -> List[np.ndarray]:
        """Interior-node indices per level, deepest level first.

        A node appears in the list for the level it sits on; leaves are
        excluded.  The dedup passes iterate this to propagate labels.
        The arrays are precomputed once at construction — treat them as
        read-only.
        """
        return self._interior_only

    def interior_levels_with_children(
        self,
    ) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """``(interior, left, right)`` index triples per level, deepest
        level first.

        The child arrays (``2*interior + 1`` / ``2*interior + 2``) are
        cached at construction so the per-checkpoint tree passes never
        recompute them.  Treat the arrays as read-only.
        """
        return self._interior_levels


class MerkleTree:
    """Digest storage plus bottom-up construction over a :class:`TreeLayout`.

    ``digests`` is the ``(num_nodes, 2)`` uint64 array the dedup engine
    mutates in place across checkpoints — the previous checkpoint's leaf
    digests are what fixed-duplicate detection compares against
    (Algorithm 1, line 3).
    """

    def __init__(self, layout: TreeLayout) -> None:
        self.layout = layout
        self.digests = np.zeros((layout.num_nodes, 2), dtype=np.uint64)

    @classmethod
    def for_chunks(cls, num_chunks: int) -> "MerkleTree":
        """Construct an empty tree sized for *num_chunks* leaves."""
        return cls(TreeLayout(num_chunks))

    @property
    def nbytes(self) -> int:
        """Device memory footprint of the digest array."""
        return self.digests.nbytes

    def set_leaves(self, leaf_digests: np.ndarray) -> None:
        """Write per-chunk digests into their leaf slots (data order)."""
        check_digests(leaf_digests, "leaf_digests")
        if leaf_digests.shape[0] != self.layout.num_leaves:
            raise ChunkingError(
                f"expected {self.layout.num_leaves} leaf digests, got "
                f"{leaf_digests.shape[0]}"
            )
        self.digests[self.layout.node_of_leaf] = leaf_digests

    def leaves(self) -> np.ndarray:
        """Current leaf digests in data order (a copy)."""
        return self.digests[self.layout.node_of_leaf].copy()

    def build_interior(self) -> int:
        """Recompute every interior digest bottom-up.

        Returns the number of interior hashes computed (for metering).
        """
        computed = 0
        for interior, left, right in self.layout.interior_levels_with_children():
            self.digests[interior] = hash_digest_pairs(
                self.digests[left], self.digests[right]
            )
            computed += interior.shape[0]
        return computed

    def build_from_leaves(self, leaf_digests: np.ndarray) -> int:
        """Set leaves then rebuild all interior nodes; returns hash count."""
        self.set_leaves(leaf_digests)
        return self.build_interior()

    def root(self) -> np.ndarray:
        """Digest of the root node (a ``(2,)`` copy)."""
        return self.digests[0].copy()

    def verify(self) -> bool:
        """Check every interior digest matches ``H(left || right)``.

        Used by tests and the property suite; O(num_nodes) hashing.
        """
        for interior, left, right in self.layout.interior_levels_with_children():
            expect = hash_digest_pairs(self.digests[left], self.digests[right])
            if not np.array_equal(expect, self.digests[interior]):
                return False
        return True
