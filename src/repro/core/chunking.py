"""Checkpoint chunking.

The paper splits each checkpoint into fine-grained chunks of tens to
hundreds of bytes (§2.1) — chunk size is *the* tuning knob studied in
Fig. 4.  This module owns the arithmetic: how many chunks a buffer yields,
the byte range of each chunk, and reinterpreting arbitrary numeric buffers
(the GDV array is ``uint32``) as flat ``uint8`` streams.

A chunk size below 32 bytes (twice the 16-byte digest) makes interior
Merkle nodes costlier than leaves (§2.4); we allow it but expose
:func:`min_recommended_chunk_size` so callers can warn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from ..errors import ChunkingError
from ..hashing.murmur3 import DIGEST_BYTES
from ..utils.validation import positive_int

BufferLike = Union[bytes, bytearray, memoryview, np.ndarray]


def min_recommended_chunk_size() -> int:
    """Smallest chunk size where leaves stay cheaper than interior nodes."""
    return 2 * DIGEST_BYTES


def as_uint8(data: BufferLike) -> np.ndarray:
    """Reinterpret *data* as a flat uint8 array without copying when possible.

    Accepts ``bytes``-like objects and any C-contiguous NumPy array; the GDV
    checkpoints produced by ORANGES are ``uint32`` arrays, for instance.
    """
    if isinstance(data, np.ndarray):
        if not data.flags["C_CONTIGUOUS"]:
            raise ChunkingError("checkpoint buffers must be C-contiguous")
        return data.reshape(-1).view(np.uint8)
    if isinstance(data, (bytes, bytearray, memoryview)):
        return np.frombuffer(data, dtype=np.uint8)
    raise ChunkingError(f"cannot interpret {type(data).__name__} as a byte buffer")


@dataclass(frozen=True)
class ChunkSpec:
    """Chunk layout of a fixed-size checkpoint buffer.

    Attributes
    ----------
    data_len:
        Checkpoint size in bytes.
    chunk_size:
        Bytes per chunk; the final chunk may be shorter.
    """

    data_len: int
    chunk_size: int

    def __post_init__(self) -> None:
        positive_int(self.data_len, "data_len")
        positive_int(self.chunk_size, "chunk_size")
        if self.chunk_size > self.data_len:
            raise ChunkingError(
                f"chunk_size {self.chunk_size} exceeds data length {self.data_len}"
            )

    @property
    def num_chunks(self) -> int:
        """Total chunks, counting a possibly-short tail chunk."""
        return -(-self.data_len // self.chunk_size)

    @property
    def tail_len(self) -> int:
        """Length of the final chunk (== chunk_size when evenly divisible)."""
        rem = self.data_len % self.chunk_size
        return rem if rem else self.chunk_size

    def chunk_bounds(self, chunk: int) -> Tuple[int, int]:
        """Byte range ``[start, end)`` of chunk index *chunk*."""
        if not 0 <= chunk < self.num_chunks:
            raise ChunkingError(
                f"chunk index {chunk} out of range [0, {self.num_chunks})"
            )
        start = chunk * self.chunk_size
        return start, min(start + self.chunk_size, self.data_len)

    def chunk_len(self, chunk: int) -> int:
        """Byte length of chunk *chunk*."""
        start, end = self.chunk_bounds(chunk)
        return end - start

    def range_bounds(self, first_chunk: int, num: int) -> Tuple[int, int]:
        """Byte range covered by *num* chunks starting at *first_chunk*."""
        if num <= 0:
            raise ChunkingError(f"region must cover at least one chunk, got {num}")
        start, _ = self.chunk_bounds(first_chunk)
        _, end = self.chunk_bounds(first_chunk + num - 1)
        return start, end

    def lengths(self) -> np.ndarray:
        """Per-chunk byte lengths as an int64 array."""
        out = np.full(self.num_chunks, self.chunk_size, dtype=np.int64)
        out[-1] = self.tail_len
        return out

    def validate_buffer(self, data: np.ndarray) -> np.ndarray:
        """Check a uint8 buffer matches this spec and return it."""
        flat = as_uint8(data)
        if flat.shape[0] != self.data_len:
            raise ChunkingError(
                f"buffer is {flat.shape[0]} bytes, spec expects {self.data_len}"
            )
        return flat
