"""``Tree`` — the paper's Merkle-tree compact-metadata de-duplication.

Implements Algorithm 1 (§2.2) in three vectorized passes over the flat
Merkle tree:

1. **Leaf pass** — hash every chunk; a chunk whose digest matches the same
   leaf of the previous checkpoint is a *fixed duplicate*; otherwise it is
   inserted into the historical record of unique hashes — success means
   *first occurrence*, failure means *shifted duplicate* of the winning
   entry.

2. **First-occurrence consolidation** (two-stage scheduling, stage one) —
   level by level bottom-up, a parent whose children are both FIRST_OCUR
   becomes FIRST_OCUR itself: its digest is computed from the children and
   inserted into the record so future checkpoints can match the *region*.
   Parents of two FIXED_DUPL children are likewise FIXED_DUPL (they
   contribute nothing and need no hash).

3. **Shift consolidation + emission** (stage two) — level by level
   bottom-up, a parent whose children are both SHIFT_DUPL is hashed and
   looked up: if the region digest already exists in the record the parent
   becomes a single SHIFT_DUPL region; otherwise, and for any parent with
   disagreeing children, the children are emitted as the *roots* of the
   compact metadata — FIRST regions carry payload, SHIFT regions carry a
   ``(ref_node, ref_ckpt)`` pointer, FIXED regions are omitted entirely.

Stage one runs to completion before stage two so that shifted duplicates
can never race ahead of the first occurrences they depend on — the exact
hazard the paper's two-stage parallelization avoids.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import SerializationError
from ..hashing.digest import digests_equal
from ..hashing.murmur3 import hash_chunks, hash_digest_pairs
from ..kokkos.unordered_map import DigestMap
from .base import DedupEngine
from .diff import CheckpointDiff
from .labels import FIRST_OCUR, FIXED_DUPL, MIXED, SHIFT_DUPL, new_label_array
from .merkle import MerkleTree, TreeLayout
from .serialize import gather_region_payload


class TreeDedup(DedupEngine):
    """Merkle-tree de-duplication with compact region metadata.

    Parameters beyond the base class:

    payload_codec:
        Optional codec from :mod:`repro.compress` applied to the
        first-occurrence payload before serialization — the paper's
        future-work hybrid (§5).  The diff then stores compressed payload
        bytes; pass the same codec to the restorers (the codec choice is
        record-level configuration, carried out-of-band like the chunk
        size's engine-side counterpart).
    """

    name = "tree"

    def __init__(
        self,
        data_len: int,
        chunk_size: int,
        payload_codec=None,
        **kwargs,
    ) -> None:
        super().__init__(data_len, chunk_size, **kwargs)
        self.layout = TreeLayout(self.spec.num_chunks)
        self.tree = MerkleTree(self.layout)
        # Worst case the record gains one entry per node per checkpoint
        # epoch; leaves + interior = 2n - 1 for the first checkpoint.
        self.map = DigestMap(capacity_hint=max(self.layout.num_nodes, 16))
        self.payload_codec = payload_codec
        #: Labels of the most recent checkpoint (exposed for tests/examples).
        self.last_labels: np.ndarray | None = None
        # Winner (ref_node, ref_ckpt) per SHIFT_DUPL node, captured from the
        # fused insert_or_lookup / lookup results of the leaf and shift
        # passes so serialization never re-probes the hash record.
        self._shift_refs = np.zeros((self.layout.num_nodes, 2), dtype=np.int64)
        self._shift_ref_valid = np.zeros(self.layout.num_nodes, dtype=bool)

    def device_state_bytes(self) -> int:
        """Merkle digest array plus the historical hash record."""
        return self.tree.nbytes + self.map.nbytes

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def _process(self, flat: np.ndarray, ckpt_id: int) -> CheckpointDiff:
        if ckpt_id == 0:
            return self._initial_checkpoint(flat)
        labels = new_label_array(self.layout.num_nodes)
        self._shift_ref_valid[:] = False

        self._leaf_pass(flat, ckpt_id, labels)
        self._first_ocur_pass(ckpt_id, labels)
        first_nodes, shift_nodes = self._shift_pass_and_emit(labels)
        self.last_labels = labels

        return self._serialize(flat, ckpt_id, first_nodes, shift_nodes)

    def _initial_checkpoint(self, flat: np.ndarray) -> CheckpointDiff:
        """Checkpoint 0: stored in full, with the *entire* Merkle tree
        inserted into the historical record (§2.2 / Fig. 2: "the record of
        unique hashes consists of all possible non-overlapping regions").

        Seeding every region digest — not just the all-FIRST subtrees — is
        what lets later checkpoints consolidate shifted duplicates of any
        region of the initial state (repeated zero runs included).
        """
        n = self.spec.num_chunks
        with self.phase("tree.hash_leaves"):
            digests = hash_chunks(flat, self.spec.chunk_size)
            self.space.launch(
                "tree.hash_leaves",
                items=n,
                bytes_read=self.spec.data_len,
                bytes_written=digests.nbytes,
            )
        self.tree.set_leaves(digests)
        with self.phase("tree.build_interior"):
            interior_hashes = self.tree.build_interior()
            self.space.launch(
                "tree.build_interior",
                items=interior_hashes,
                bytes_read=32 * interior_hashes,
                bytes_written=16 * interior_hashes,
            )

        # Insert every node digest, leaves first (chunk order), then the
        # interior bottom-up — first-wins matches the two-stage schedule.
        order = [self.layout.node_of_leaf]
        for level in self.layout.interior_levels_bottom_up():
            order.append(level)
        nodes = np.concatenate(order)
        keys = np.ascontiguousarray(self.tree.digests[nodes])
        values = np.empty((nodes.shape[0], 2), dtype=np.int64)
        values[:, 0] = nodes
        values[:, 1] = 0
        probes_before = self.map.total_probes
        with self.phase("tree.map_seed"):
            self.map.insert(keys, values)
            self.space.launch(
                "tree.map_seed",
                items=int(nodes.shape[0]),
                bytes_read=keys.nbytes,
                random_accesses=self.map.total_probes - probes_before,
            )

        with self.phase("tree.gather"):
            self.space.launch(
                "tree.serialize",
                items=1,
                bytes_read=self.spec.data_len,
                bytes_written=self.spec.data_len,
            )
        return CheckpointDiff(
            method="full",
            ckpt_id=0,
            data_len=self.spec.data_len,
            chunk_size=self.spec.chunk_size,
            payload=flat.tobytes(),
        )

    def _leaf_pass(self, flat: np.ndarray, ckpt_id: int, labels: np.ndarray) -> None:
        """Algorithm 1, lines 1-23."""
        leaf_nodes = self.layout.node_of_leaf
        n = self.spec.num_chunks

        with self.phase("tree.hash_leaves"):
            digests = hash_chunks(flat, self.spec.chunk_size)
            self.space.launch(
                "tree.hash_leaves",
                items=n,
                bytes_read=self.spec.data_len,
                bytes_written=digests.nbytes,
            )

        if ckpt_id == 0:
            fixed = np.zeros(n, dtype=bool)
        else:
            prev = self.tree.digests[leaf_nodes]
            fixed = digests_equal(digests, prev)
            self.space.launch(
                "tree.fixed_compare",
                items=n,
                bytes_read=2 * digests.nbytes,
            )
        labels[leaf_nodes[fixed]] = FIXED_DUPL

        moving = np.nonzero(~fixed)[0]
        values = np.empty((moving.shape[0], 2), dtype=np.int64)
        values[:, 0] = leaf_nodes[moving]
        values[:, 1] = ckpt_id
        probes_before = self.map.total_probes
        with self.phase("tree.map_leaves"):
            success, winners = self.map.insert_or_lookup(
                np.ascontiguousarray(digests[moving]), values
            )
            self.space.launch(
                "tree.classify_leaves",
                items=int(moving.shape[0]),
                bytes_read=digests.nbytes,
                bytes_written=n,  # label array
                random_accesses=self.map.total_probes - probes_before,
            )
        labels[leaf_nodes[moving[success]]] = FIRST_OCUR
        shifted = leaf_nodes[moving[~success]]
        labels[shifted] = SHIFT_DUPL
        # The fused insert already yielded each loser's winning entry:
        # keep it so serialization needs no second probe.
        self._shift_refs[shifted] = winners[~success]
        self._shift_ref_valid[shifted] = True

        # Tree(leaf) <- digest (line 21); fixed leaves keep an equal value.
        self.tree.digests[leaf_nodes] = digests

    def _first_ocur_pass(self, ckpt_id: int, labels: np.ndarray) -> None:
        """Algorithm 1, lines 24-32, plus FIXED_DUPL propagation."""
        for interior, left, right in self.layout.interior_levels_with_children():
            ll = labels[left]
            lr = labels[right]

            both_first = (ll == FIRST_OCUR) & (lr == FIRST_OCUR)
            nodes = interior[both_first]
            if nodes.size:
                with self.phase("tree.first_pass"):
                    dig = hash_digest_pairs(
                        self.tree.digests[left[both_first]],
                        self.tree.digests[right[both_first]],
                    )
                    self.tree.digests[nodes] = dig
                    vals = np.empty((nodes.shape[0], 2), dtype=np.int64)
                    vals[:, 0] = nodes
                    vals[:, 1] = ckpt_id
                    probes_before = self.map.total_probes
                    self.map.insert(dig, vals)
                    self.space.launch(
                        "tree.first_pass",
                        items=int(nodes.shape[0]),
                        bytes_read=2 * 16 * int(nodes.shape[0]),
                        bytes_written=16 * int(nodes.shape[0]),
                        random_accesses=self.map.total_probes - probes_before,
                    )
                labels[nodes] = FIRST_OCUR

            both_fixed = (ll == FIXED_DUPL) & (lr == FIXED_DUPL)
            labels[interior[both_fixed]] = FIXED_DUPL

    def _shift_pass_and_emit(
        self, labels: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Algorithm 1, lines 33-46: consolidate shifted duplicates and
        collect the compact-metadata region roots."""
        first_out: List[np.ndarray] = []
        shift_out: List[np.ndarray] = []

        def emit(children: np.ndarray) -> None:
            kinds = labels[children]
            first_out.append(children[kinds == FIRST_OCUR])
            shift_out.append(children[kinds == SHIFT_DUPL])
            # FIXED children are omitted; MIXED children were emitted below.

        for interior, ch_left, ch_right in self.layout.interior_levels_with_children():
            # Nodes already consolidated by stage one (FIRST/FIXED) skip.
            keep = (labels[interior] != FIRST_OCUR) & (labels[interior] != FIXED_DUPL)
            undecided = interior[keep]
            if undecided.size == 0:
                continue
            left = ch_left[keep]
            right = ch_right[keep]
            ll = labels[left]
            lr = labels[right]

            both_shift = (ll == SHIFT_DUPL) & (lr == SHIFT_DUPL)
            nodes = undecided[both_shift]
            if nodes.size:
                with self.phase("tree.shift_pass"):
                    dig = hash_digest_pairs(
                        self.tree.digests[left[both_shift]],
                        self.tree.digests[right[both_shift]],
                    )
                    self.tree.digests[nodes] = dig
                    probes_before = self.map.total_probes
                    # Fused lookup: one probe yields both the existence bit
                    # and the (ref_node, ref_ckpt) the serializer needs.
                    found, refs = self.map.lookup(dig)
                    self.space.launch(
                        "tree.shift_pass",
                        items=int(nodes.shape[0]),
                        bytes_read=2 * 16 * int(nodes.shape[0]),
                        bytes_written=16 * int(nodes.shape[0]),
                        random_accesses=self.map.total_probes - probes_before,
                    )
                consolidated = nodes[found]
                labels[consolidated] = SHIFT_DUPL
                self._shift_refs[consolidated] = refs[found]
                self._shift_ref_valid[consolidated] = True
                stopped = nodes[~found]
                if stopped.size:
                    emit(np.concatenate([2 * stopped + 1, 2 * stopped + 2]))
                    labels[stopped] = MIXED

            mixed = undecided[~both_shift]
            if mixed.size:
                emit(np.concatenate([2 * mixed + 1, 2 * mixed + 2]))
                labels[mixed] = MIXED

        # The root is never anyone's child: emit it if it carries a
        # uniform non-fixed label.
        root_label = labels[0]
        if root_label == FIRST_OCUR:
            first_out.append(np.array([0], dtype=np.int64))
        elif root_label == SHIFT_DUPL:
            shift_out.append(np.array([0], dtype=np.int64))

        first_nodes = (
            np.sort(np.concatenate(first_out)) if first_out else np.empty(0, np.int64)
        )
        shift_nodes = (
            np.sort(np.concatenate(shift_out)) if shift_out else np.empty(0, np.int64)
        )
        return first_nodes.astype(np.int64), shift_nodes.astype(np.int64)

    def _serialize(
        self,
        flat: np.ndarray,
        ckpt_id: int,
        first_nodes: np.ndarray,
        shift_nodes: np.ndarray,
    ) -> CheckpointDiff:
        """Gather payload and resolve shifted-duplicate references."""
        with self.phase("tree.gather"):
            payload, _ = gather_region_payload(
                flat, self.spec, self.layout, first_nodes
            )

            if shift_nodes.size:
                # The leaf and shift passes already resolved every SHIFT
                # node's winning (ref_node, ref_ckpt) through their fused
                # map probes; serialization is a plain gather from the
                # cached ref table.
                if not self._shift_ref_valid[shift_nodes].all():
                    # pragma: no cover - algorithm invariant
                    raise SerializationError(
                        "shifted-duplicate region missing from the hash record"
                    )
                refs = self._shift_refs[shift_nodes]
                shift_ref_ids = refs[:, 0].copy()
                shift_ref_ckpts = refs[:, 1].copy()
                ref_gather_accesses = int(shift_nodes.shape[0])
            else:
                shift_ref_ids = np.empty(0, dtype=np.int64)
                shift_ref_ckpts = np.empty(0, dtype=np.int64)
                ref_gather_accesses = 0

            raw_payload = payload
            if self.payload_codec is not None:
                raw_payload = self.payload_codec.compress(payload)

            self.space.launch(
                "tree.serialize",
                items=int(first_nodes.shape[0] + shift_nodes.shape[0]),
                bytes_read=len(payload),
                bytes_written=len(raw_payload)
                + 4 * int(first_nodes.shape[0])
                + 12 * int(shift_nodes.shape[0]),
                random_accesses=ref_gather_accesses,
            )

        return CheckpointDiff(
            method=self.name,
            ckpt_id=ckpt_id,
            data_len=self.spec.data_len,
            chunk_size=self.spec.chunk_size,
            first_ids=first_nodes,
            shift_ids=shift_nodes,
            shift_ref_ids=shift_ref_ids,
            shift_ref_ckpts=shift_ref_ckpts,
            payload=raw_payload,
        )
