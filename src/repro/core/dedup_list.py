"""``List`` — full spatiotemporal de-duplication without metadata compaction.

The paper's List baseline (§3.2) performs the same chunk-level
classification as the Tree method — fixed duplicates, first occurrences
and shifted duplicates against the *entire* checkpoint record — but emits
one metadata entry per non-fixed chunk instead of consolidating adjacent
chunks into regions.  Its de-duplication ratio therefore collapses at
small chunk sizes (Fig. 4): the per-chunk metadata starts to rival the
data savings.
"""

from __future__ import annotations

import numpy as np

from ..hashing.digest import digests_equal
from ..hashing.murmur3 import hash_chunks
from ..kokkos.unordered_map import DigestMap
from .base import DedupEngine
from .diff import CheckpointDiff
from .serialize import gather_chunk_payload


class ListDedup(DedupEngine):
    """Chunk-granular dedup against the historical record, list metadata."""

    name = "list"

    def __init__(self, data_len: int, chunk_size: int, **kwargs) -> None:
        super().__init__(data_len, chunk_size, **kwargs)
        self._prev_digests: np.ndarray | None = None
        self.map = DigestMap(capacity_hint=max(self.spec.num_chunks, 16))

    def device_state_bytes(self) -> int:
        """Digest array plus the historical hash record."""
        prev = 0 if self._prev_digests is None else self._prev_digests.nbytes
        return prev + self.map.nbytes

    def _process(self, flat: np.ndarray, ckpt_id: int) -> CheckpointDiff:
        n = self.spec.num_chunks

        with self.phase("list.hash"):
            digests = hash_chunks(flat, self.spec.chunk_size)
            self.space.launch(
                "list.hash",
                items=n,
                bytes_read=self.spec.data_len,
                bytes_written=digests.nbytes,
            )

        if self._prev_digests is None:
            # Checkpoint 0: stored in full; the record is seeded with every
            # chunk digest so later checkpoints can dedup against it.
            self._prev_digests = digests
            values = np.empty((n, 2), dtype=np.int64)
            values[:, 0] = np.arange(n)
            values[:, 1] = ckpt_id
            probes_before = self.map.total_probes
            with self.phase("list.map"):
                self.map.insert(digests, values)
                self.space.launch(
                    "list.map_seed",
                    items=n,
                    bytes_read=digests.nbytes,
                    random_accesses=self.map.total_probes - probes_before,
                )
            self.space.launch(
                "list.serialize",
                items=1,
                bytes_read=self.spec.data_len,
                bytes_written=self.spec.data_len,
            )
            return CheckpointDiff(
                method="full",
                ckpt_id=0,
                data_len=self.spec.data_len,
                chunk_size=self.spec.chunk_size,
                payload=flat.tobytes(),
            )

        fixed = digests_equal(digests, self._prev_digests)
        self._prev_digests = digests

        moving = np.nonzero(~fixed)[0]
        values = np.empty((moving.shape[0], 2), dtype=np.int64)
        values[:, 0] = moving
        values[:, 1] = ckpt_id
        probes_before = self.map.total_probes
        with self.phase("list.map"):
            success, winners = self.map.insert(
                np.ascontiguousarray(digests[moving]), values
            )
            self.space.launch(
                "list.classify",
                items=int(moving.shape[0]),
                bytes_read=digests.nbytes,
                random_accesses=self.map.total_probes - probes_before,
            )

        first_ids = moving[success]
        shift_mask = ~success
        shift_ids = moving[shift_mask]
        shift_ref_ids = winners[shift_mask, 0]
        shift_ref_ckpts = winners[shift_mask, 1]

        with self.phase("list.gather"):
            payload = gather_chunk_payload(flat, self.spec, first_ids)
            self.space.launch(
                "list.serialize",
                items=int(first_ids.shape[0]),
                bytes_read=len(payload),
                bytes_written=len(payload)
                + 4 * first_ids.shape[0]
                + 12 * shift_ids.shape[0],
            )

        return CheckpointDiff(
            method=self.name,
            ckpt_id=ckpt_id,
            data_len=self.spec.data_len,
            chunk_size=self.spec.chunk_size,
            first_ids=first_ids,
            shift_ids=shift_ids,
            shift_ref_ids=shift_ref_ids,
            shift_ref_ckpts=shift_ref_ckpts,
            payload=payload,
        )
