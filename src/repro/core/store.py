"""On-disk checkpoint record store.

Persists a diff chain as one file per checkpoint plus a small JSON
manifest — the shape a deployment would push down the Fig. 3 hierarchy.
The wire format is the versioned encoding of
:class:`~repro.core.diff.CheckpointDiff`, so records written here can be
read by any tool that speaks it.

Layout::

    <dir>/record.json            manifest: method, count, geometry, digests
    <dir>/ckpt-00000.rdif        CheckpointDiff.to_bytes() per checkpoint
    <dir>/ckpt-00001.rdif
    ...

Manifest format v2 adds integrity: a per-checkpoint SHA-256 of each
``.rdif`` file and a manifest-level *chain digest* (SHA-256 over the
concatenated per-file digests), so swapping one valid frame for another
valid-but-wrong frame is detected even though both frames self-verify.
v1 manifests (and v1 frames) written before the format bump still load;
their checkpoints are reported as ``unverified`` by :func:`verify_record`
rather than trusted silently.  See ``docs/FAULT_MODEL.md``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..errors import IntegrityError, ReproError, SerializationError, StorageError
from .. import telemetry
from ..telemetry import events
from .diff import CheckpointDiff

_FRAMES_READ = telemetry.counter(
    "store.frames_read", "Checkpoint .rdif frames read and parsed"
)
_FRAME_BYTES_READ = telemetry.counter(
    "store.frame_bytes_read", "Bytes of .rdif frames read from disk"
)
_FRAMES_WRITTEN = telemetry.counter(
    "store.frames_written", "Checkpoint .rdif frames written to disk"
)
_SALVAGE_EVENTS = telemetry.counter(
    "store.salvage_events", "Non-strict loads truncated at a damaged frame"
)

_MANIFEST = "record.json"
_PATTERN = "ckpt-{:05d}.rdif"
_INDEX_FILE = "provenance.rpix"
_FORMAT_VERSION = 2
_V1 = 1

#: Per-checkpoint statuses reported by :func:`verify_record`.
STATUS_OK = "ok"
STATUS_UNVERIFIED = "unverified"
STATUS_CORRUPT = "corrupt"
STATUS_MISSING = "missing"


def _file_digest(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for block in iter(lambda: f.read(1 << 20), b""):
            h.update(block)
    return h.hexdigest()


def _chain_digest(digests: List[str]) -> str:
    h = hashlib.sha256()
    for d in digests:
        h.update(bytes.fromhex(d))
    return h.hexdigest()


def _read_manifest(path: Path) -> dict:
    """Load and minimally validate a manifest, wrapping parse errors.

    A malformed manifest is a *storage* failure, not a programming error:
    raw ``json.JSONDecodeError`` / ``KeyError`` must never escape to
    callers.
    """
    manifest_path = path / _MANIFEST
    if not manifest_path.exists():
        raise StorageError(f"{path} holds no record manifest")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StorageError(f"malformed record manifest {manifest_path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise StorageError(
            f"malformed record manifest {manifest_path}: not a JSON object"
        )
    try:
        manifest["num_checkpoints"] = int(manifest["num_checkpoints"])
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(
            f"malformed record manifest {manifest_path}: bad num_checkpoints"
        ) from exc
    version = manifest.get("format_version")
    if version not in (_V1, _FORMAT_VERSION):
        raise StorageError(f"unsupported record format {version!r}")
    return manifest


def save_record(
    diffs: List[CheckpointDiff],
    directory: Union[str, Path],
    method: str = "",
    provenance=None,
) -> Path:
    """Write a diff chain to *directory* (created if missing).

    Refuses to overwrite a directory already holding a different record
    length unless it holds a strict prefix of this chain (append-style
    updates are fine) — and the existing record must agree on geometry
    (``data_len``, ``chunk_size``) and ``method``, so a chain can never
    be silently mixed with an incompatible one.

    *provenance* optionally supplies a prebuilt
    :class:`~repro.core.provenance.ProvenanceTable` for exactly this
    chain (a rebase computes one as it rewrites diffs); it is validated
    against the chain's shape and persisted instead of rebuilding the
    index from the diffs.
    """
    if not diffs:
        raise StorageError("cannot save an empty record")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    manifest_path = path / _MANIFEST
    if manifest_path.exists():
        existing = _read_manifest(path)
        if existing["num_checkpoints"] > len(diffs):
            raise StorageError(
                f"{path} already holds a longer record "
                f"({existing['num_checkpoints']} checkpoints)"
            )
        for key, value in (
            ("data_len", diffs[0].data_len),
            ("chunk_size", diffs[0].chunk_size),
        ):
            held = existing.get(key)
            if held is not None and held != value:
                raise StorageError(
                    f"{path} holds an incompatible record: "
                    f"{key}={held!r} on disk vs {value!r} being saved"
                )
        # Method compatibility: a single-checkpoint record's manifest
        # method is just its first diff's method (a tree chain opens
        # with a full checkpoint), so only a longer record pins the
        # chain method.
        held_method = existing.get("method")
        new_method = method or diffs[-1].method
        if (
            held_method is not None
            and existing["num_checkpoints"] > 1
            and held_method != new_method
        ):
            raise StorageError(
                f"{path} holds an incompatible record: "
                f"method={held_method!r} on disk vs {new_method!r} being saved"
            )
        # Strongest append guard: the overlapping prefix must be the
        # same bytes checkpoint for checkpoint (v2 manifests only).
        held_digests = existing.get("digests")
        if held_digests:
            for i in range(min(len(held_digests), len(diffs))):
                new_digest = hashlib.sha256(diffs[i].to_bytes()).hexdigest()
                if new_digest != held_digests[i]:
                    raise StorageError(
                        f"{path} holds a different chain: checkpoint {i} "
                        f"does not match the stored record (append must "
                        f"extend, not rewrite)"
                    )

    with telemetry.span(
        "store.save_record", frames=len(diffs), path=str(path)
    ) as span:
        digests = []
        written = 0
        for diff in diffs:
            blob = diff.to_bytes()
            (path / _PATTERN.format(diff.ckpt_id)).write_bytes(blob)
            digests.append(hashlib.sha256(blob).hexdigest())
            written += len(blob)
        _FRAMES_WRITTEN.inc(len(diffs))
        manifest = {
            "format_version": _FORMAT_VERSION,
            "method": method or diffs[-1].method,
            "num_checkpoints": len(diffs),
            "data_len": diffs[0].data_len,
            "chunk_size": diffs[0].chunk_size,
            "digests": digests,
            "chain_digest": _chain_digest(digests),
        }

        # Best-effort provenance index (the restore fast path).  A chain
        # that cannot be indexed — hand-built, deliberately corrupt —
        # must still save; restores of such records just fall back to
        # chain replay.  A caller that already holds the chain's table
        # (a rebase builds one while rewriting) supplies it instead of
        # paying the rebuild.
        index_path = path / _INDEX_FILE
        if provenance is not None:
            if (
                provenance.num_checkpoints != len(diffs)
                or provenance.data_len != diffs[0].data_len
                or provenance.chunk_size != diffs[0].chunk_size
            ):
                raise StorageError(
                    f"supplied provenance table ({provenance.num_checkpoints} "
                    f"checkpoints, data_len={provenance.data_len}) does not "
                    f"match the chain being saved ({len(diffs)} checkpoints, "
                    f"data_len={diffs[0].data_len})"
                )
            blob = provenance.to_bytes()
            index_path.write_bytes(blob)
            index_entry: Optional[dict] = {
                "file": index_path.name,
                "sha256": hashlib.sha256(blob).hexdigest(),
            }
        else:
            with telemetry.span("store.provenance_build", frames=len(diffs)):
                index_entry = _write_provenance(diffs, index_path)
        if index_entry is not None:
            manifest["provenance"] = index_entry
        elif index_path.exists():
            index_path.unlink()

        manifest_path.write_text(json.dumps(manifest, indent=2))
        span.set(bytes=written, indexed=index_entry is not None)
    return path


def _write_provenance(
    diffs: List[CheckpointDiff], index_path: Path
) -> Optional[dict]:
    """Serialize the chain's provenance index; ``None`` if un-indexable."""
    from .provenance import ProvenanceTable  # local: store ↔ provenance

    try:
        blob = ProvenanceTable.from_diffs(diffs).to_bytes()
    except ReproError:
        return None
    index_path.write_bytes(blob)
    return {
        "file": index_path.name,
        "sha256": hashlib.sha256(blob).hexdigest(),
    }


def _load_one(
    path: Path, index: int, expected_digest: Optional[str]
) -> CheckpointDiff:
    """Load + fully verify one checkpoint frame; raises on any damage."""
    if not path.exists():
        raise StorageError(f"record is missing checkpoint file {path.name}")
    blob = path.read_bytes()
    _FRAMES_READ.inc()
    _FRAME_BYTES_READ.inc(len(blob))
    if expected_digest is not None:
        actual = hashlib.sha256(blob).hexdigest()
        if actual != expected_digest:
            raise IntegrityError(
                f"{path.name}: file digest mismatch "
                f"(manifest {expected_digest[:16]}…, file {actual[:16]}…)",
                ckpt_id=index,
                path=str(path),
            )
    try:
        diff = CheckpointDiff.from_bytes(blob)
    except IntegrityError as exc:
        raise IntegrityError(str(exc), ckpt_id=index, path=str(path)) from exc
    if diff.ckpt_id != index:
        raise StorageError(f"{path.name} holds checkpoint {diff.ckpt_id}")
    return diff


def load_record(
    directory: Union[str, Path], strict: bool = True
) -> List[CheckpointDiff]:
    """Read a diff chain previously written by :func:`save_record`.

    With ``strict=True`` (the default) any missing, corrupt, or
    mismatched checkpoint file raises (:class:`StorageError` /
    :class:`IntegrityError`).  With ``strict=False`` the longest valid
    *prefix* of the chain is salvaged instead: loading stops at the first
    bad checkpoint and whatever verified before it is returned (possibly
    an empty list).  Diffs are chains — a checkpoint past a hole cannot
    be reconstructed anyway, so the valid prefix is exactly the
    recoverable part.
    """
    path = Path(directory)
    manifest = _read_manifest(path)
    count = manifest["num_checkpoints"]
    digests = manifest.get("digests")
    diffs: List[CheckpointDiff] = []
    with telemetry.span(
        "store.load_record", path=str(path), frames=count, strict=strict
    ) as span:
        for i in range(count):
            expected = (
                digests[i] if digests is not None and i < len(digests) else None
            )
            try:
                diffs.append(_load_one(path / _PATTERN.format(i), i, expected))
            except (StorageError, SerializationError) as exc:
                if strict:
                    raise
                _SALVAGE_EVENTS.inc()
                telemetry.instant(
                    "store.salvage",
                    path=str(path),
                    first_bad=i,
                    valid_prefix=len(diffs),
                    error=type(exc).__name__,
                )
                events.emit(
                    events.SALVAGE,
                    path=str(path),
                    first_bad=i,
                    valid_prefix=len(diffs),
                    error=type(exc).__name__,
                )
                break
        span.set(loaded=len(diffs))
    return diffs


def load_record_frames(
    directory: Union[str, Path], indices: Sequence[int]
) -> Dict[int, CheckpointDiff]:
    """Load + verify only the named checkpoint frames of a record.

    The selective-read primitive behind the indexed restore path: a
    provenance index names the frames whose payloads a checkpoint's bytes
    live in, and only those files are read and parsed.  Each frame still
    gets the full v2 treatment (manifest digest + embedded digest).
    """
    path = Path(directory)
    manifest = _read_manifest(path)
    count = manifest["num_checkpoints"]
    digests = manifest.get("digests")
    frames: Dict[int, CheckpointDiff] = {}
    with telemetry.span(
        "store.load_frames", path=str(path), frames_total=count
    ) as span:
        for i in indices:
            i = int(i)
            if not 0 <= i < count:
                raise StorageError(f"checkpoint {i} outside record of {count}")
            if i in frames:
                continue
            expected = (
                digests[i] if digests is not None and i < len(digests) else None
            )
            frames[i] = _load_one(path / _PATTERN.format(i), i, expected)
        span.set(frames_read=len(frames))
    return frames


def record_frame_sizes(directory: Union[str, Path]) -> List[int]:
    """On-disk byte size of each ``.rdif`` frame (0 for missing files)."""
    path = Path(directory)
    manifest = _read_manifest(path)
    sizes = []
    for i in range(manifest["num_checkpoints"]):
        frame = path / _PATTERN.format(i)
        sizes.append(frame.stat().st_size if frame.exists() else 0)
    return sizes


def load_provenance(directory: Union[str, Path]):
    """Load a record's persisted provenance index, if it has one.

    Returns a :class:`~repro.core.provenance.ProvenanceTable`, or ``None``
    when the record predates the index (v1 records, or chains that were
    not indexable at save time).  A *present but damaged* index raises
    :class:`IntegrityError` — callers choose whether to fall back.
    """
    from .provenance import ProvenanceTable  # local: store ↔ provenance

    path = Path(directory)
    manifest = _read_manifest(path)
    entry = manifest.get("provenance")
    if entry is None:
        return None
    try:
        index_path = path / str(entry["file"])
        expected = str(entry["sha256"])
    except (TypeError, KeyError) as exc:
        raise StorageError(
            f"malformed provenance entry in {path / _MANIFEST}"
        ) from exc
    if not index_path.exists():
        raise IntegrityError(
            f"manifest names provenance index {index_path.name}, "
            f"which is missing",
            path=str(index_path),
        )
    blob = index_path.read_bytes()
    actual = hashlib.sha256(blob).hexdigest()
    if actual != expected:
        raise IntegrityError(
            f"{index_path.name}: file digest mismatch "
            f"(manifest {expected[:16]}…, file {actual[:16]}…)",
            path=str(index_path),
        )
    return ProvenanceTable.from_bytes(blob)


def record_index_bytes(directory: Union[str, Path]) -> int:
    """On-disk byte size of the record's provenance index (0 if absent)."""
    path = Path(directory)
    manifest = _read_manifest(path)
    entry = manifest.get("provenance")
    if entry is None:
        return 0
    try:
        index_path = path / str(entry["file"])
    except (TypeError, KeyError) as exc:
        raise StorageError(
            f"malformed provenance entry in {path / _MANIFEST}"
        ) from exc
    return index_path.stat().st_size if index_path.exists() else 0


def record_manifest(directory: Union[str, Path]) -> dict:
    """Read just the manifest of a stored record."""
    return _read_manifest(Path(directory))


@dataclass
class CheckpointStatus:
    """Verification outcome of one stored checkpoint."""

    index: int
    filename: str
    status: str  # one of STATUS_OK / STATUS_UNVERIFIED / STATUS_CORRUPT / STATUS_MISSING
    detail: str = ""

    @property
    def loadable(self) -> bool:
        """Whether the frame parses at all (ok or merely unverified)."""
        return self.status in (STATUS_OK, STATUS_UNVERIFIED)


@dataclass
class RecordVerification:
    """Full integrity report of a stored record directory."""

    directory: str
    format_version: int
    checkpoints: List[CheckpointStatus] = field(default_factory=list)
    chain_ok: Optional[bool] = None  # None when the manifest has no chain digest
    provenance_ok: Optional[bool] = None  # None when the record has no index
    #: On-disk provenance index size vs its uncompressed 12 B/chunk form
    #: (both 0 when the record has no index or the index is damaged).
    index_bytes: int = 0
    index_raw_bytes: int = 0
    detail: str = ""

    @property
    def ok(self) -> bool:
        """Every checkpoint verified and the chain digest matched.

        A record without a provenance index is still ``ok`` (replay
        restores it); a record whose index is *damaged* is not.
        """
        return (
            all(c.status == STATUS_OK for c in self.checkpoints)
            and self.chain_ok is True
            and self.provenance_ok is not False
        )

    @property
    def first_bad(self) -> Optional[int]:
        """Index of the first non-loadable checkpoint, or ``None``."""
        for c in self.checkpoints:
            if not c.loadable:
                return c.index
        return None

    @property
    def index_compression_ratio(self) -> float:
        """Raw index bytes over stored (RPIX v2 compressed) bytes."""
        if self.index_bytes <= 0:
            return 0.0
        return self.index_raw_bytes / self.index_bytes

    @property
    def valid_prefix_len(self) -> int:
        """Length of the longest loadable prefix (what salvage recovers)."""
        n = 0
        for c in self.checkpoints:
            if not c.loadable:
                break
            n += 1
        return n

    def summary(self) -> str:
        """One line per checkpoint plus the chain verdict."""
        lines = [
            f"{c.filename}: {c.status}" + (f" ({c.detail})" if c.detail else "")
            for c in self.checkpoints
        ]
        if self.chain_ok is None:
            lines.append("chain digest: absent (v1 record)")
        else:
            lines.append(f"chain digest: {'ok' if self.chain_ok else 'MISMATCH'}")
        if self.provenance_ok is None:
            lines.append("provenance index: absent")
        elif not self.provenance_ok:
            lines.append("provenance index: DAMAGED")
        else:
            ratio = self.index_compression_ratio
            detail = (
                f" ({self.index_bytes} B, {ratio:.1f}x vs raw 12 B/chunk)"
                if ratio
                else ""
            )
            lines.append(f"provenance index: ok{detail}")
        return "\n".join(lines)


def verify_record(directory: Union[str, Path]) -> RecordVerification:
    """Scan a record directory and report per-checkpoint integrity.

    Never raises for damage inside the record (only for an unusable
    manifest): every checkpoint is classified ``ok`` / ``unverified`` /
    ``corrupt`` / ``missing`` so callers see the full extent of the
    damage, not just the first problem.
    """
    path = Path(directory)
    manifest = _read_manifest(path)
    digests = manifest.get("digests")
    report = RecordVerification(
        directory=str(path), format_version=manifest["format_version"]
    )

    seen_digests: List[str] = []
    for i in range(manifest["num_checkpoints"]):
        blob_path = path / _PATTERN.format(i)
        name = blob_path.name
        if not blob_path.exists():
            report.checkpoints.append(
                CheckpointStatus(i, name, STATUS_MISSING, "file not found")
            )
            continue
        blob = blob_path.read_bytes()
        seen_digests.append(hashlib.sha256(blob).hexdigest())
        expected = digests[i] if digests is not None and i < len(digests) else None
        if expected is not None and seen_digests[-1] != expected:
            report.checkpoints.append(
                CheckpointStatus(i, name, STATUS_CORRUPT, "file digest mismatch")
            )
            continue
        try:
            diff = CheckpointDiff.from_bytes(blob)
        except SerializationError as exc:  # includes IntegrityError
            report.checkpoints.append(
                CheckpointStatus(i, name, STATUS_CORRUPT, str(exc))
            )
            continue
        if diff.ckpt_id != i:
            report.checkpoints.append(
                CheckpointStatus(
                    i, name, STATUS_CORRUPT, f"holds checkpoint {diff.ckpt_id}"
                )
            )
            continue
        if diff.verified is False:
            report.checkpoints.append(
                CheckpointStatus(i, name, STATUS_UNVERIFIED, "v1 frame, no digest")
            )
        elif expected is None:
            report.checkpoints.append(
                CheckpointStatus(
                    i, name, STATUS_UNVERIFIED, "no manifest digest for this frame"
                )
            )
        else:
            report.checkpoints.append(CheckpointStatus(i, name, STATUS_OK))

    chain_expected = manifest.get("chain_digest")
    if chain_expected is not None:
        complete = all(c.status != STATUS_MISSING for c in report.checkpoints)
        report.chain_ok = complete and _chain_digest(seen_digests) == chain_expected

    if manifest.get("provenance") is not None:
        try:
            table = load_provenance(path)
        except (StorageError, SerializationError):
            report.provenance_ok = False
        else:
            report.provenance_ok = table is not None
            if table is not None:
                report.index_bytes = record_index_bytes(path)
                report.index_raw_bytes = table.raw_index_bytes
    return report
