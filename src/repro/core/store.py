"""On-disk checkpoint record store.

Persists a diff chain as one file per checkpoint plus a small JSON
manifest — the shape a deployment would push down the Fig. 3 hierarchy.
The wire format is the versioned encoding of
:class:`~repro.core.diff.CheckpointDiff`, so records written here can be
read by any tool that speaks it.

Layout::

    <dir>/record.json            manifest: method, count, geometry, digests
    <dir>/ckpt-00000.rdif        CheckpointDiff.to_bytes() per checkpoint
    <dir>/ckpt-00001.rdif
    ...

Manifest format v2 adds integrity: a per-checkpoint SHA-256 of each
``.rdif`` file and a manifest-level *chain digest* (SHA-256 over the
concatenated per-file digests), so swapping one valid frame for another
valid-but-wrong frame is detected even though both frames self-verify.
v1 manifests (and v1 frames) written before the format bump still load;
their checkpoints are reported as ``unverified`` by :func:`verify_record`
rather than trusted silently.  See ``docs/FAULT_MODEL.md``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..errors import IntegrityError, ReproError, SerializationError, StorageError
from .. import telemetry
from ..telemetry import events
from .diff import CheckpointDiff

_FRAMES_READ = telemetry.counter(
    "store.frames_read", "Checkpoint .rdif frames read and parsed"
)
_FRAME_BYTES_READ = telemetry.counter(
    "store.frame_bytes_read", "Bytes of .rdif frames read from disk"
)
_FRAMES_WRITTEN = telemetry.counter(
    "store.frames_written", "Checkpoint .rdif frames written to disk"
)
_FRAMES_REUSED = telemetry.counter(
    "store.frames_reused",
    "Frames already on disk with matching digests, skipped by save_record",
)
_SALVAGE_EVENTS = telemetry.counter(
    "store.salvage_events", "Non-strict loads truncated at a damaged frame"
)

_MANIFEST = "record.json"
_PATTERN = "ckpt-{:05d}.rdif"
_INDEX_FILE = "provenance.rpix"
_FORMAT_VERSION = 2
_V1 = 1

#: Per-checkpoint statuses reported by :func:`verify_record`.
STATUS_OK = "ok"
STATUS_UNVERIFIED = "unverified"
STATUS_CORRUPT = "corrupt"
STATUS_MISSING = "missing"


def _file_digest(path: Path) -> str:
    with open(path, "rb") as f:
        if hasattr(hashlib, "file_digest"):  # Python >= 3.11: zero-copy path
            return hashlib.file_digest(f, "sha256").hexdigest()
        h = hashlib.sha256()
        for block in iter(lambda: f.read(1 << 20), b""):
            h.update(block)
        return h.hexdigest()


def _chain_digest(digests: List[str]) -> str:
    h = hashlib.sha256()
    for d in digests:
        h.update(bytes.fromhex(d))
    return h.hexdigest()


def _read_manifest(path: Path) -> dict:
    """Load and minimally validate a manifest, wrapping parse errors.

    A malformed manifest is a *storage* failure, not a programming error:
    raw ``json.JSONDecodeError`` / ``KeyError`` must never escape to
    callers.
    """
    manifest_path = path / _MANIFEST
    if not manifest_path.exists():
        raise StorageError(f"{path} holds no record manifest")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StorageError(f"malformed record manifest {manifest_path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise StorageError(
            f"malformed record manifest {manifest_path}: not a JSON object"
        )
    try:
        manifest["num_checkpoints"] = int(manifest["num_checkpoints"])
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(
            f"malformed record manifest {manifest_path}: bad num_checkpoints"
        ) from exc
    version = manifest.get("format_version")
    if version not in (_V1, _FORMAT_VERSION):
        raise StorageError(f"unsupported record format {version!r}")
    return manifest


@dataclass
class AppendReceipt:
    """What one :meth:`RecordWriter.append` actually put on disk."""

    ckpt_id: int
    #: Bytes of the new ``.rdif`` frame (the checkpoint itself).
    frame_bytes: int
    #: Provenance rows appended (0 when the record is unindexed).
    index_rows_appended: int
    #: Bytes appended to + rewritten in ``provenance.rpix``.
    index_bytes: int
    #: Bytes of the rewritten manifest.
    manifest_bytes: int

    @property
    def bytes_written(self) -> int:
        """Total bytes this append put on disk."""
        return self.frame_bytes + self.index_bytes + self.manifest_bytes


class RecordWriter:
    """Append-optimized handle on a record directory.

    ``open → append(diff) × N → close``; the record is durable and
    loadable after *every* append.  Each append writes only the new
    frame, one RPIX v3 row-group, the 60-byte index prologue, and the
    manifest — never the existing frames or index rows, so the cost of
    appending checkpoint N is O(rows in checkpoint N), not O(chain).

    Opening an existing record is the only O(chain) step: the manifest's
    cached per-frame digests seed the rolling chain digest (no frame is
    re-read or re-hashed, except a cheap sanity check of the last frame),
    and the persisted index is decoded once to seed the
    :class:`~repro.core.provenance.ProvenanceBuilder`.  A legacy v1/v2
    index is upgraded to the v3 row-group layout on the first append; a
    record with *no* index (an unindexable chain) stays unindexed.

    The writer mirrors :func:`save_record`'s leniency for hand-built
    chains: a diff the builder rejects drops the index (the record still
    saves, restores fall back to replay), exactly as the whole-chain
    path always behaved.
    """

    def __init__(self, directory: Union[str, Path], method: str = "") -> None:
        from .provenance import ProvenanceBuilder  # local: store ↔ provenance

        self.path = Path(directory)
        self.path.mkdir(parents=True, exist_ok=True)
        self.method = method
        self._last_method = ""
        self._digests: List[str] = []
        self._frame_sizes: List[int] = []
        self._chain = hashlib.sha256()
        self._data_len: Optional[int] = None
        self._chunk_size: Optional[int] = None
        self._builder: Optional[ProvenanceBuilder] = ProvenanceBuilder()
        self._group_chain = hashlib.sha256()
        self._index_end = 0  # byte offset past the last valid row-group
        self._index_legacy = False  # v1/v2 blob pending v3 rewrite
        self._closed = False
        if (self.path / _MANIFEST).exists():
            self._open_existing()

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Checkpoints the record currently holds."""
        return len(self._digests)

    @property
    def digests(self) -> List[str]:
        """Per-frame SHA-256 hexes, in chain order (a copy)."""
        return list(self._digests)

    @property
    def indexed(self) -> bool:
        """Whether the record carries a provenance index."""
        return self._builder is not None

    def __enter__(self) -> "RecordWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Mark the writer closed (every append was already durable)."""
        self._closed = True

    # ------------------------------------------------------------------
    def _open_existing(self) -> None:
        from . import provenance as _prov  # local: store ↔ provenance

        existing = _read_manifest(self.path)
        count = existing["num_checkpoints"]
        if count <= 0:
            return
        self._data_len = existing.get("data_len")
        self._chunk_size = existing.get("chunk_size")
        held_method = existing.get("method")
        if held_method:
            if self.method and count > 1 and held_method != self.method:
                raise StorageError(
                    f"{self.path} holds an incompatible record: "
                    f"method={held_method!r} on disk vs {self.method!r} "
                    f"being saved"
                )
            self._last_method = str(held_method)

        digests = existing.get("digests")
        if digests and len(digests) == count:
            self._digests = [str(d) for d in digests]
            # Torn-append sanity: the manifest is written last, so the
            # one frame that could disagree with it after a crash is the
            # final one.  One file hash, not a chain re-scan.
            last = self.path / _PATTERN.format(count - 1)
            if not last.exists() or _file_digest(last) != self._digests[-1]:
                raise IntegrityError(
                    f"{last.name}: frame does not match the manifest "
                    f"(damaged or torn record; run verify_record)",
                    ckpt_id=count - 1,
                    path=str(last),
                )
        else:
            # v1 manifest (or digestless): hash what is on disk once, so
            # the next append upgrades the record to the v2 manifest.
            for i in range(count):
                frame = self.path / _PATTERN.format(i)
                if not frame.exists():
                    raise StorageError(
                        f"record is missing checkpoint file {frame.name}"
                    )
                self._digests.append(_file_digest(frame))
        for d in self._digests:
            self._chain.update(bytes.fromhex(d))

        sizes = existing.get("frame_bytes")
        if sizes and len(sizes) == count:
            self._frame_sizes = [int(s) for s in sizes]
        else:
            self._frame_sizes = [
                (lambda p: p.stat().st_size if p.exists() else 0)(
                    self.path / _PATTERN.format(i)
                )
                for i in range(count)
            ]

        entry = existing.get("provenance")
        index_path = self.path / _INDEX_FILE
        if entry is None:
            # Unindexed record (unindexable chain, or the index was
            # dropped): appends continue without an index.
            self._builder = None
            return
        if isinstance(entry, dict) and "chain_sha256" in entry:
            table = load_provenance(self.path)
            blob = index_path.read_bytes()
            _header, groups = _prov.scan_v3(blob, max_rows=int(entry["rows"]))
            for g in groups:
                self._group_chain.update(g.digest)
            last_group = groups[-1]
            self._index_end = last_group.body_off + last_group.body_len
        else:
            # Legacy v1/v2 blob: decode it for the builder seed; the
            # first append rewrites it in the v3 row-group layout.
            table = load_provenance(self.path)
            self._index_legacy = True
        self._builder.seed(table)

    # ------------------------------------------------------------------
    def _drop_index(self) -> None:
        self._builder = None
        index_path = self.path / _INDEX_FILE
        if index_path.exists():
            index_path.unlink()
        self._index_end = 0
        self._index_legacy = False

    def _append_index(self, diff: CheckpointDiff) -> tuple:
        """Extend the v3 index by one row-group; returns (rows, bytes)."""
        assert self._builder is not None
        try:
            row = self._builder.append(diff)
        except ReproError:
            self._drop_index()
            return 0, 0
        return self._write_group(row)

    def _write_group(self, row) -> tuple:
        from . import provenance as _prov

        rows_before = len(self._builder.indexes) - 1
        n_chunks = int(row.src_ckpt.shape[0])
        with telemetry.span(
            "store.index.append_group", rows=1, first_ckpt=rows_before
        ) as span:
            record, digest = _prov.encode_v3_group(
                rows_before,
                row.src_ckpt.reshape(1, n_chunks),
                row.src_off.reshape(1, n_chunks),
            )
            self._group_chain.update(digest)
            prologue = _prov.encode_v3_prologue(
                rows_before + 1, n_chunks, row.data_len, row.chunk_size
            )
            index_path = self.path / _INDEX_FILE
            if self._index_legacy or not index_path.exists():
                # One-time v3 (re)materialization: prologue + one group
                # per already-held checkpoint, then the new group.
                parts = [prologue]
                self._group_chain = hashlib.sha256()
                for k, idx in enumerate(self._builder.indexes):
                    rec, dig = _prov.encode_v3_group(
                        k,
                        idx.src_ckpt.reshape(1, n_chunks),
                        idx.src_off.reshape(1, n_chunks),
                    )
                    parts.append(rec)
                    self._group_chain.update(dig)
                blob = b"".join(parts)
                index_path.write_bytes(blob)
                self._index_end = len(blob)
                self._index_legacy = False
                written = len(blob)
            else:
                with open(index_path, "r+b") as f:
                    f.seek(self._index_end)
                    f.write(record)
                    f.truncate()
                    f.seek(0)
                    f.write(prologue)
                self._index_end += len(record)
                written = len(record) + len(prologue)
            span.set(bytes=written)
        return 1, written

    # ------------------------------------------------------------------
    def append(self, diff: CheckpointDiff, index_row=None) -> AppendReceipt:
        """Durably append one checkpoint: frame + row-group + manifest.

        *index_row* optionally supplies the checkpoint's already-resolved
        :class:`~repro.core.provenance.ProvenanceIndex` row (a rebase
        holds the whole table); otherwise the row is composed
        incrementally from *diff*.
        """
        if self._closed:
            raise StorageError(f"record writer for {self.path} is closed")
        if self._data_len is not None and diff.data_len != self._data_len:
            raise StorageError(
                f"{self.path} holds an incompatible record: "
                f"data_len={self._data_len!r} on disk vs "
                f"{diff.data_len!r} being saved"
            )
        with telemetry.span(
            "store.append", ckpt=diff.ckpt_id, path=str(self.path)
        ) as span:
            blob = diff.to_bytes()
            digest = hashlib.sha256(blob).hexdigest()
            diff._frame_digest = digest
            (self.path / _PATTERN.format(diff.ckpt_id)).write_bytes(blob)
            _FRAMES_WRITTEN.inc()
            prior = self.count
            self._digests.append(digest)
            self._frame_sizes.append(len(blob))
            self._chain.update(bytes.fromhex(digest))
            if self._data_len is None:
                self._data_len = diff.data_len
                self._chunk_size = diff.chunk_size
            self._last_method = diff.method

            if self._builder is not None:
                if index_row is not None:
                    self._builder.indexes.append(index_row)
                    rows_appended, index_bytes = self._write_group(index_row)
                else:
                    rows_appended, index_bytes = self._append_index(diff)
            else:
                rows_appended, index_bytes = 0, 0

            manifest_bytes = self._write_manifest()
            span.set(
                bytes=len(blob) + index_bytes + manifest_bytes,
                frame_bytes=len(blob),
                index_bytes=index_bytes,
                manifest_bytes=manifest_bytes,
            )
        receipt = AppendReceipt(
            ckpt_id=diff.ckpt_id,
            frame_bytes=len(blob),
            index_rows_appended=rows_appended,
            index_bytes=index_bytes,
            manifest_bytes=manifest_bytes,
        )
        events.emit(
            events.RECORD_APPENDED,
            path=str(self.path),
            ckpt_id=diff.ckpt_id,
            frames_written=1,
            frames_reused=prior,
            index_rows_appended=rows_appended,
            bytes_written=receipt.bytes_written,
            checkpoint_bytes=len(blob),
        )
        return receipt

    def _write_manifest(self) -> int:
        manifest = {
            "format_version": _FORMAT_VERSION,
            "method": self.method or self._last_method,
            "num_checkpoints": self.count,
            "data_len": self._data_len,
            "chunk_size": self._chunk_size,
            "digests": list(self._digests),
            "frame_bytes": list(self._frame_sizes),
            "chain_digest": self._chain.hexdigest(),
        }
        if self._builder is not None and self._builder.indexes:
            manifest["provenance"] = {
                "file": _INDEX_FILE,
                "version": 3,
                "rows": len(self._builder.indexes),
                "chain_sha256": self._group_chain.hexdigest(),
            }
        text = json.dumps(manifest, indent=2)
        (self.path / _MANIFEST).write_text(text)
        return len(text)

    def reset(self) -> None:
        """Drop the record entirely (a crashed chain restarts at 0)."""
        from .provenance import ProvenanceBuilder  # local: store ↔ provenance

        for frame in self.path.glob("ckpt-*.rdif"):
            frame.unlink()
        for name in (_INDEX_FILE, _MANIFEST):
            target = self.path / name
            if target.exists():
                target.unlink()
        self._digests = []
        self._frame_sizes = []
        self._chain = hashlib.sha256()
        self._data_len = None
        self._chunk_size = None
        self._builder = ProvenanceBuilder()
        self._group_chain = hashlib.sha256()
        self._index_end = 0
        self._index_legacy = False
        self._last_method = ""


def save_record(
    diffs: List[CheckpointDiff],
    directory: Union[str, Path],
    method: str = "",
    provenance=None,
) -> Path:
    """Write a diff chain to *directory* (created if missing).

    Refuses to overwrite a directory already holding a different record
    length unless it holds a strict prefix of this chain (append-style
    updates are fine) — and the existing record must agree on geometry
    (``data_len``, ``chunk_size``) and ``method``, so a chain can never
    be silently mixed with an incompatible one.

    A thin wrapper over :class:`RecordWriter`: frames whose stored
    digests already match the chain are *reused*, never rewritten, and
    only the suffix past the stored prefix is appended — so appending
    one checkpoint through this legacy entry point costs one frame, one
    index row-group, and a manifest, not a record rewrite.

    *provenance* optionally supplies a prebuilt
    :class:`~repro.core.provenance.ProvenanceTable` for exactly this
    chain (a rebase computes one as it rewrites diffs); it is validated
    against the chain's shape and persisted instead of rebuilding the
    index from the diffs.
    """
    if not diffs:
        raise StorageError("cannot save an empty record")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    manifest_path = path / _MANIFEST
    prefix = 0
    if manifest_path.exists():
        existing = _read_manifest(path)
        if existing["num_checkpoints"] > len(diffs):
            raise StorageError(
                f"{path} already holds a longer record "
                f"({existing['num_checkpoints']} checkpoints)"
            )
        for key, value in (
            ("data_len", diffs[0].data_len),
            ("chunk_size", diffs[0].chunk_size),
        ):
            held = existing.get(key)
            if held is not None and held != value:
                raise StorageError(
                    f"{path} holds an incompatible record: "
                    f"{key}={held!r} on disk vs {value!r} being saved"
                )
        # Method compatibility: a single-checkpoint record's manifest
        # method is just its first diff's method (a tree chain opens
        # with a full checkpoint), so only a longer record pins the
        # chain method.
        held_method = existing.get("method")
        new_method = method or diffs[-1].method
        if (
            held_method is not None
            and existing["num_checkpoints"] > 1
            and held_method != new_method
        ):
            raise StorageError(
                f"{path} holds an incompatible record: "
                f"method={held_method!r} on disk vs {new_method!r} being saved"
            )
        # Strongest append guard: the overlapping prefix must be the
        # same bytes checkpoint for checkpoint (v2 manifests only).
        # The diffs' cached frame digests make this O(chain) hash
        # *comparisons*, not O(chain) re-serialization.
        held_digests = existing.get("digests")
        if held_digests:
            for i in range(min(len(held_digests), len(diffs))):
                if diffs[i].frame_digest() != held_digests[i]:
                    raise StorageError(
                        f"{path} holds a different chain: checkpoint {i} "
                        f"does not match the stored record (append must "
                        f"extend, not rewrite)"
                    )
            prefix = min(len(held_digests), len(diffs))

    if provenance is not None:
        if (
            provenance.num_checkpoints != len(diffs)
            or provenance.data_len != diffs[0].data_len
            or provenance.chunk_size != diffs[0].chunk_size
        ):
            raise StorageError(
                f"supplied provenance table ({provenance.num_checkpoints} "
                f"checkpoints, data_len={provenance.data_len}) does not "
                f"match the chain being saved ({len(diffs)} checkpoints, "
                f"data_len={diffs[0].data_len})"
            )

    with telemetry.span(
        "store.save_record", frames=len(diffs), path=str(path)
    ) as span:
        writer = RecordWriter(path, method=method)
        if prefix == 0 and writer.count:
            # Digestless (v1) record: no prefix can be trusted, so the
            # whole chain is rewritten — the historical upgrade path.
            writer.reset()
        _FRAMES_REUSED.inc(prefix)
        written = 0
        for i in range(prefix, len(diffs)):
            receipt = writer.append(
                diffs[i],
                index_row=provenance.row(i) if provenance is not None else None,
            )
            written += receipt.frame_bytes
        writer.close()
        span.set(
            bytes=written,
            frames_written=len(diffs) - prefix,
            frames_reused=prefix,
            indexed=writer.indexed,
        )
    return path


def _load_one(
    path: Path, index: int, expected_digest: Optional[str]
) -> CheckpointDiff:
    """Load + fully verify one checkpoint frame; raises on any damage."""
    if not path.exists():
        raise StorageError(f"record is missing checkpoint file {path.name}")
    blob = path.read_bytes()
    _FRAMES_READ.inc()
    _FRAME_BYTES_READ.inc(len(blob))
    if expected_digest is not None:
        actual = hashlib.sha256(blob).hexdigest()
        if actual != expected_digest:
            raise IntegrityError(
                f"{path.name}: file digest mismatch "
                f"(manifest {expected_digest[:16]}…, file {actual[:16]}…)",
                ckpt_id=index,
                path=str(path),
            )
    try:
        diff = CheckpointDiff.from_bytes(blob)
    except IntegrityError as exc:
        raise IntegrityError(str(exc), ckpt_id=index, path=str(path)) from exc
    if diff.ckpt_id != index:
        raise StorageError(f"{path.name} holds checkpoint {diff.ckpt_id}")
    return diff


def load_record(
    directory: Union[str, Path], strict: bool = True
) -> List[CheckpointDiff]:
    """Read a diff chain previously written by :func:`save_record`.

    With ``strict=True`` (the default) any missing, corrupt, or
    mismatched checkpoint file raises (:class:`StorageError` /
    :class:`IntegrityError`).  With ``strict=False`` the longest valid
    *prefix* of the chain is salvaged instead: loading stops at the first
    bad checkpoint and whatever verified before it is returned (possibly
    an empty list).  Diffs are chains — a checkpoint past a hole cannot
    be reconstructed anyway, so the valid prefix is exactly the
    recoverable part.
    """
    path = Path(directory)
    manifest = _read_manifest(path)
    count = manifest["num_checkpoints"]
    digests = manifest.get("digests")
    diffs: List[CheckpointDiff] = []
    with telemetry.span(
        "store.load_record", path=str(path), frames=count, strict=strict
    ) as span:
        for i in range(count):
            expected = (
                digests[i] if digests is not None and i < len(digests) else None
            )
            try:
                diffs.append(_load_one(path / _PATTERN.format(i), i, expected))
            except (StorageError, SerializationError) as exc:
                if strict:
                    raise
                _SALVAGE_EVENTS.inc()
                telemetry.instant(
                    "store.salvage",
                    path=str(path),
                    first_bad=i,
                    valid_prefix=len(diffs),
                    error=type(exc).__name__,
                )
                events.emit(
                    events.SALVAGE,
                    path=str(path),
                    first_bad=i,
                    valid_prefix=len(diffs),
                    error=type(exc).__name__,
                )
                break
        span.set(loaded=len(diffs))
    return diffs


def load_record_frames(
    directory: Union[str, Path], indices: Sequence[int]
) -> Dict[int, CheckpointDiff]:
    """Load + verify only the named checkpoint frames of a record.

    The selective-read primitive behind the indexed restore path: a
    provenance index names the frames whose payloads a checkpoint's bytes
    live in, and only those files are read and parsed.  Each frame still
    gets the full v2 treatment (manifest digest + embedded digest).
    """
    path = Path(directory)
    manifest = _read_manifest(path)
    count = manifest["num_checkpoints"]
    digests = manifest.get("digests")
    frames: Dict[int, CheckpointDiff] = {}
    with telemetry.span(
        "store.load_frames", path=str(path), frames_total=count
    ) as span:
        for i in indices:
            i = int(i)
            if not 0 <= i < count:
                raise StorageError(f"checkpoint {i} outside record of {count}")
            if i in frames:
                continue
            expected = (
                digests[i] if digests is not None and i < len(digests) else None
            )
            frames[i] = _load_one(path / _PATTERN.format(i), i, expected)
        span.set(frames_read=len(frames))
    return frames


def record_frame_sizes(directory: Union[str, Path]) -> List[int]:
    """On-disk byte size of each ``.rdif`` frame (0 for missing files)."""
    path = Path(directory)
    manifest = _read_manifest(path)
    sizes = []
    for i in range(manifest["num_checkpoints"]):
        frame = path / _PATTERN.format(i)
        sizes.append(frame.stat().st_size if frame.exists() else 0)
    return sizes


def load_provenance(directory: Union[str, Path], upto: Optional[int] = None):
    """Load a record's persisted provenance index, if it has one.

    Returns a :class:`~repro.core.provenance.ProvenanceTable`, or ``None``
    when the record predates the index (v1 records, or chains that were
    not indexable at save time).  A *present but damaged* index raises
    :class:`IntegrityError` — callers choose whether to fall back.

    With *upto*, a v3 (row-group) index is loaded *selectively*: only
    the groups covering checkpoints ``0..upto`` are hashed and decoded,
    so restoring checkpoint K never pays for — and is never blocked by
    damage in — groups past K.  The manifest's ``chain_sha256`` over the
    stored group digests is always checked in full (a structural walk,
    no body decoding).  Legacy v1/v2 blobs ignore *upto*.
    """
    from . import provenance as _prov  # local: store ↔ provenance

    path = Path(directory)
    manifest = _read_manifest(path)
    entry = manifest.get("provenance")
    if entry is None:
        return None
    try:
        index_path = path / str(entry["file"])
    except (TypeError, KeyError) as exc:
        raise StorageError(
            f"malformed provenance entry in {path / _MANIFEST}"
        ) from exc
    if not index_path.exists():
        raise IntegrityError(
            f"manifest names provenance index {index_path.name}, "
            f"which is missing",
            path=str(index_path),
        )
    blob = index_path.read_bytes()

    if "chain_sha256" in entry:
        try:
            rows = int(entry["rows"])
            expected_chain = str(entry["chain_sha256"])
        except (TypeError, KeyError, ValueError) as exc:
            raise StorageError(
                f"malformed provenance entry in {path / _MANIFEST}"
            ) from exc
        header, groups = _prov.scan_v3(blob, max_rows=rows)
        actual_chain = hashlib.sha256(
            b"".join(g.digest for g in groups)
        ).hexdigest()
        if actual_chain != expected_chain:
            raise IntegrityError(
                f"{index_path.name}: row-group chain digest mismatch "
                f"(manifest {expected_chain[:16]}…, file "
                f"{actual_chain[:16]}…)",
                path=str(index_path),
            )
        chosen = (
            groups
            if upto is None
            else [g for g in groups if g.first_ckpt <= upto]
        )
        src_ckpt, src_off = _prov.decode_v3_groups(
            blob, chosen, header["num_chunks"]
        )
        return _prov.ProvenanceTable(
            data_len=header["data_len"],
            chunk_size=header["chunk_size"],
            src_ckpt=src_ckpt,
            src_off=src_off,
            index_rows=rows,
        )

    try:
        expected = str(entry["sha256"])
    except (TypeError, KeyError) as exc:
        raise StorageError(
            f"malformed provenance entry in {path / _MANIFEST}"
        ) from exc
    actual = hashlib.sha256(blob).hexdigest()
    if actual != expected:
        raise IntegrityError(
            f"{index_path.name}: file digest mismatch "
            f"(manifest {expected[:16]}…, file {actual[:16]}…)",
            path=str(index_path),
        )
    return _prov.ProvenanceTable.from_bytes(blob)


def record_index_bytes(directory: Union[str, Path]) -> int:
    """On-disk byte size of the record's provenance index (0 if absent)."""
    path = Path(directory)
    manifest = _read_manifest(path)
    entry = manifest.get("provenance")
    if entry is None:
        return 0
    try:
        index_path = path / str(entry["file"])
    except (TypeError, KeyError) as exc:
        raise StorageError(
            f"malformed provenance entry in {path / _MANIFEST}"
        ) from exc
    return index_path.stat().st_size if index_path.exists() else 0


def record_manifest(directory: Union[str, Path]) -> dict:
    """Read just the manifest of a stored record."""
    return _read_manifest(Path(directory))


@dataclass
class CheckpointStatus:
    """Verification outcome of one stored checkpoint."""

    index: int
    filename: str
    status: str  # one of STATUS_OK / STATUS_UNVERIFIED / STATUS_CORRUPT / STATUS_MISSING
    detail: str = ""

    @property
    def loadable(self) -> bool:
        """Whether the frame parses at all (ok or merely unverified)."""
        return self.status in (STATUS_OK, STATUS_UNVERIFIED)


@dataclass
class RecordVerification:
    """Full integrity report of a stored record directory."""

    directory: str
    format_version: int
    checkpoints: List[CheckpointStatus] = field(default_factory=list)
    chain_ok: Optional[bool] = None  # None when the manifest has no chain digest
    provenance_ok: Optional[bool] = None  # None when the record has no index
    #: On-disk provenance index size vs its uncompressed 12 B/chunk form
    #: (both 0 when the record has no index or the index is damaged).
    index_bytes: int = 0
    index_raw_bytes: int = 0
    #: v3 row-group accounting: total groups scanned, and the first
    #: checkpoint of every group whose digest did not match (empty for
    #: legacy v1/v2 blobs, which verify whole-file).
    index_groups: int = 0
    index_bad_groups: List[int] = field(default_factory=list)
    detail: str = ""

    @property
    def ok(self) -> bool:
        """Every checkpoint verified and the chain digest matched.

        A record without a provenance index is still ``ok`` (replay
        restores it); a record whose index is *damaged* is not.
        """
        return (
            all(c.status == STATUS_OK for c in self.checkpoints)
            and self.chain_ok is True
            and self.provenance_ok is not False
        )

    @property
    def first_bad(self) -> Optional[int]:
        """Index of the first non-loadable checkpoint, or ``None``."""
        for c in self.checkpoints:
            if not c.loadable:
                return c.index
        return None

    @property
    def index_compression_ratio(self) -> float:
        """Raw index bytes over stored (RPIX v2/v3 compressed) bytes."""
        if self.index_bytes <= 0:
            return 0.0
        return self.index_raw_bytes / self.index_bytes

    @property
    def valid_prefix_len(self) -> int:
        """Length of the longest loadable prefix (what salvage recovers)."""
        n = 0
        for c in self.checkpoints:
            if not c.loadable:
                break
            n += 1
        return n

    def summary(self) -> str:
        """One line per checkpoint plus the chain verdict."""
        lines = [
            f"{c.filename}: {c.status}" + (f" ({c.detail})" if c.detail else "")
            for c in self.checkpoints
        ]
        if self.chain_ok is None:
            lines.append("chain digest: absent (v1 record)")
        else:
            lines.append(f"chain digest: {'ok' if self.chain_ok else 'MISMATCH'}")
        if self.provenance_ok is None:
            lines.append("provenance index: absent")
        elif not self.provenance_ok:
            detail = (
                f" ({len(self.index_bad_groups)}/{self.index_groups} "
                f"row-groups damaged)"
                if self.index_bad_groups
                else ""
            )
            lines.append(f"provenance index: DAMAGED{detail}")
        else:
            ratio = self.index_compression_ratio
            groups_part = (
                f", {self.index_groups} row-groups" if self.index_groups else ""
            )
            detail = (
                f" ({self.index_bytes} B, {ratio:.1f}x vs raw 12 B/chunk"
                f"{groups_part})"
                if ratio
                else ""
            )
            lines.append(f"provenance index: ok{detail}")
        return "\n".join(lines)


def verify_record(directory: Union[str, Path]) -> RecordVerification:
    """Scan a record directory and report per-checkpoint integrity.

    Never raises for damage inside the record (only for an unusable
    manifest): every checkpoint is classified ``ok`` / ``unverified`` /
    ``corrupt`` / ``missing`` so callers see the full extent of the
    damage, not just the first problem.
    """
    path = Path(directory)
    manifest = _read_manifest(path)
    digests = manifest.get("digests")
    report = RecordVerification(
        directory=str(path), format_version=manifest["format_version"]
    )

    frame_sizes = manifest.get("frame_bytes")
    seen_digests: List[str] = []
    skipped_hash = False
    for i in range(manifest["num_checkpoints"]):
        blob_path = path / _PATTERN.format(i)
        name = blob_path.name
        if not blob_path.exists():
            report.checkpoints.append(
                CheckpointStatus(i, name, STATUS_MISSING, "file not found")
            )
            continue
        expected_size = (
            int(frame_sizes[i])
            if frame_sizes is not None and i < len(frame_sizes)
            else None
        )
        if expected_size is not None:
            actual_size = blob_path.stat().st_size
            if actual_size != expected_size:
                # Size fast path: the manifest digest cannot possibly
                # match, so the frame is classified without reading or
                # hashing it.
                report.checkpoints.append(
                    CheckpointStatus(
                        i,
                        name,
                        STATUS_CORRUPT,
                        f"file size {actual_size} != manifest {expected_size}",
                    )
                )
                skipped_hash = True
                continue
        blob = blob_path.read_bytes()
        seen_digests.append(hashlib.sha256(blob).hexdigest())
        expected = digests[i] if digests is not None and i < len(digests) else None
        if expected is not None and seen_digests[-1] != expected:
            report.checkpoints.append(
                CheckpointStatus(i, name, STATUS_CORRUPT, "file digest mismatch")
            )
            continue
        try:
            diff = CheckpointDiff.from_bytes(blob)
        except SerializationError as exc:  # includes IntegrityError
            report.checkpoints.append(
                CheckpointStatus(i, name, STATUS_CORRUPT, str(exc))
            )
            continue
        if diff.ckpt_id != i:
            report.checkpoints.append(
                CheckpointStatus(
                    i, name, STATUS_CORRUPT, f"holds checkpoint {diff.ckpt_id}"
                )
            )
            continue
        if diff.verified is False:
            report.checkpoints.append(
                CheckpointStatus(i, name, STATUS_UNVERIFIED, "v1 frame, no digest")
            )
        elif expected is None:
            report.checkpoints.append(
                CheckpointStatus(
                    i, name, STATUS_UNVERIFIED, "no manifest digest for this frame"
                )
            )
        else:
            report.checkpoints.append(CheckpointStatus(i, name, STATUS_OK))

    chain_expected = manifest.get("chain_digest")
    if chain_expected is not None:
        complete = all(c.status != STATUS_MISSING for c in report.checkpoints)
        report.chain_ok = (
            complete
            and not skipped_hash
            and _chain_digest(seen_digests) == chain_expected
        )

    entry = manifest.get("provenance")
    if entry is not None:
        if isinstance(entry, dict) and "chain_sha256" in entry:
            _verify_v3_index(path, entry, report)
        else:
            try:
                table = load_provenance(path)
            except (StorageError, SerializationError):
                report.provenance_ok = False
            else:
                report.provenance_ok = table is not None
                if table is not None:
                    report.index_bytes = record_index_bytes(path)
                    report.index_raw_bytes = table.raw_index_bytes
    return report


def _verify_v3_index(path: Path, entry: dict, report: RecordVerification) -> None:
    """Per-row-group integrity of a v3 index, reported not raised.

    Every group's digest is checked independently, so the report names
    exactly which appends' rows are damaged — and an intact prefix is
    still restorable via :func:`load_provenance`'s selective ``upto``.
    """
    from . import provenance as _prov  # local: store ↔ provenance
    from .provenance import RAW_INDEX_BYTES_PER_CHUNK

    try:
        index_path = path / str(entry["file"])
        rows = int(entry["rows"])
        expected_chain = str(entry["chain_sha256"])
    except (TypeError, KeyError, ValueError):
        report.provenance_ok = False
        return
    if not index_path.exists():
        report.provenance_ok = False
        return
    blob = index_path.read_bytes()
    try:
        header, groups = _prov.scan_v3(blob, max_rows=rows)
    except (StorageError, SerializationError):
        report.provenance_ok = False
        return
    report.index_groups = len(groups)
    report.index_bad_groups = [
        g.first_ckpt for g in groups if not _prov.verify_v3_group(blob, g)
    ]
    actual_chain = hashlib.sha256(
        b"".join(g.digest for g in groups)
    ).hexdigest()
    report.provenance_ok = (
        not report.index_bad_groups and actual_chain == expected_chain
    )
    if report.provenance_ok:
        report.index_bytes = index_path.stat().st_size
        report.index_raw_bytes = (
            rows * header["num_chunks"] * RAW_INDEX_BYTES_PER_CHUNK
        )
