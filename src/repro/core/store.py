"""On-disk checkpoint record store.

Persists a diff chain as one file per checkpoint plus a small JSON
manifest — the shape a deployment would push down the Fig. 3 hierarchy.
The wire format is the versioned encoding of
:class:`~repro.core.diff.CheckpointDiff`, so records written here can be
read by any tool that speaks it.

Layout::

    <dir>/record.json            manifest: method, count, geometry
    <dir>/ckpt-00000.rdif        CheckpointDiff.to_bytes() per checkpoint
    <dir>/ckpt-00001.rdif
    ...
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from ..errors import StorageError
from .diff import CheckpointDiff

_MANIFEST = "record.json"
_PATTERN = "ckpt-{:05d}.rdif"
_FORMAT_VERSION = 1


def save_record(
    diffs: List[CheckpointDiff], directory: Union[str, Path], method: str = ""
) -> Path:
    """Write a diff chain to *directory* (created if missing).

    Refuses to overwrite a directory already holding a different record
    length unless it holds a strict prefix of this chain (append-style
    updates are fine).
    """
    if not diffs:
        raise StorageError("cannot save an empty record")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    manifest_path = path / _MANIFEST
    if manifest_path.exists():
        existing = json.loads(manifest_path.read_text())
        if existing.get("num_checkpoints", 0) > len(diffs):
            raise StorageError(
                f"{path} already holds a longer record "
                f"({existing['num_checkpoints']} checkpoints)"
            )

    for diff in diffs:
        (path / _PATTERN.format(diff.ckpt_id)).write_bytes(diff.to_bytes())
    manifest = {
        "format_version": _FORMAT_VERSION,
        "method": method or diffs[-1].method,
        "num_checkpoints": len(diffs),
        "data_len": diffs[0].data_len,
        "chunk_size": diffs[0].chunk_size,
    }
    manifest_path.write_text(json.dumps(manifest, indent=2))
    return path


def load_record(directory: Union[str, Path]) -> List[CheckpointDiff]:
    """Read a diff chain previously written by :func:`save_record`."""
    path = Path(directory)
    manifest_path = path / _MANIFEST
    if not manifest_path.exists():
        raise StorageError(f"{path} holds no record manifest")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise StorageError(
            f"unsupported record format {manifest.get('format_version')!r}"
        )
    count = int(manifest["num_checkpoints"])
    diffs = []
    for i in range(count):
        blob_path = path / _PATTERN.format(i)
        if not blob_path.exists():
            raise StorageError(f"record is missing checkpoint file {blob_path.name}")
        diffs.append(CheckpointDiff.from_bytes(blob_path.read_bytes()))
        if diffs[-1].ckpt_id != i:
            raise StorageError(f"{blob_path.name} holds checkpoint {diffs[-1].ckpt_id}")
    return diffs


def record_manifest(directory: Union[str, Path]) -> dict:
    """Read just the manifest of a stored record."""
    path = Path(directory) / _MANIFEST
    if not path.exists():
        raise StorageError(f"{Path(directory)} holds no record manifest")
    return json.loads(path.read_text())
