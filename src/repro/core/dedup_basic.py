"""``Basic`` — positional incremental checkpointing with a change bitmap.

The paper's Basic baseline (§3.2) hashes every chunk, compares each hash
against the *same position* of the previous checkpoint, and stores a
bitmap plus the changed chunks.  It captures temporal locality only: a
chunk that moved, or that duplicates another chunk elsewhere, is stored
again.  It shares the vectorized hashing and serialization machinery with
the other engines ("for fairness, both the Basic and List methods benefit
from the same massive parallelization optimizations").
"""

from __future__ import annotations

import numpy as np

from ..hashing.digest import digests_equal
from ..hashing.murmur3 import hash_chunks
from .base import DedupEngine
from .diff import CheckpointDiff
from .serialize import gather_chunk_payload, pack_bitmap


class BasicDedup(DedupEngine):
    """Bitmap-of-changed-chunks incremental checkpointing."""

    name = "basic"

    def __init__(self, data_len: int, chunk_size: int, **kwargs) -> None:
        super().__init__(data_len, chunk_size, **kwargs)
        self._prev_digests: np.ndarray | None = None

    def device_state_bytes(self) -> int:
        """The retained per-chunk digest array."""
        return 0 if self._prev_digests is None else self._prev_digests.nbytes

    def _process(self, flat: np.ndarray, ckpt_id: int) -> CheckpointDiff:
        n = self.spec.num_chunks

        with self.phase("basic.hash"):
            digests = hash_chunks(flat, self.spec.chunk_size)
            self.space.launch(
                "basic.hash",
                items=n,
                bytes_read=self.spec.data_len,
                bytes_written=digests.nbytes,
            )

        if self._prev_digests is None:
            # Checkpoint 0 is stored in full (all chunks "changed").
            self._prev_digests = digests
            self.space.launch(
                "basic.serialize",
                items=1,
                bytes_read=self.spec.data_len,
                bytes_written=self.spec.data_len,
            )
            return CheckpointDiff(
                method="full",
                ckpt_id=0,
                data_len=self.spec.data_len,
                chunk_size=self.spec.chunk_size,
                payload=flat.tobytes(),
            )

        changed = ~digests_equal(digests, self._prev_digests)
        self.space.launch(
            "basic.compare",
            items=n,
            bytes_read=2 * digests.nbytes,
            bytes_written=n,  # the boolean mask
        )
        self._prev_digests = digests

        changed_ids = np.nonzero(changed)[0]
        with self.phase("basic.gather"):
            payload = gather_chunk_payload(flat, self.spec, changed_ids)
            bitmap = pack_bitmap(changed)
            self.space.launch(
                "basic.serialize",
                items=int(changed_ids.shape[0]),
                bytes_read=len(payload),
                bytes_written=len(payload) + bitmap.nbytes,
            )

        return CheckpointDiff(
            method=self.name,
            ckpt_id=ckpt_id,
            data_len=self.spec.data_len,
            chunk_size=self.spec.chunk_size,
            bitmap=bitmap,
            payload=payload,
        )
