"""Payload gathering — the consolidation step of §2.1/§2.4.

First-occurrence chunks are scattered across the checkpoint buffer; the
paper gathers them into one contiguous device buffer (team-of-threads
copies, coalesced accesses) so a *single* D2H transfer moves the whole
diff.  These helpers perform the equivalent vectorized gathers and report
the byte traffic so the engines can meter the serialization kernel.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import SerializationError
from .chunking import ChunkSpec
from .merkle import TreeLayout


def gather_chunk_payload(
    flat: np.ndarray, spec: ChunkSpec, chunk_ids: np.ndarray
) -> bytes:
    """Concatenate the bytes of *chunk_ids* (ascending or not) in order.

    Fast path: all-full-size chunks gather via a single reshape+fancy-index;
    the (at most one) tail chunk is patched in afterwards.
    """
    ids = np.asarray(chunk_ids, dtype=np.int64)
    if ids.size == 0:
        return b""
    if ids.min() < 0 or ids.max() >= spec.num_chunks:
        raise SerializationError("chunk id out of range for payload gather")

    cs = spec.chunk_size
    full_chunks = spec.data_len // cs
    has_tail = spec.data_len % cs != 0

    tail_positions = np.nonzero(ids == spec.num_chunks - 1)[0] if has_tail else []
    if has_tail and len(tail_positions):
        parts = []
        body = flat[: full_chunks * cs].reshape(full_chunks, cs)
        # Split around tail occurrences to preserve order.
        prev = 0
        for pos in tail_positions:
            seg = ids[prev:pos]
            if seg.size:
                parts.append(body[seg].tobytes())
            start, end = spec.chunk_bounds(spec.num_chunks - 1)
            parts.append(flat[start:end].tobytes())
            prev = pos + 1
        seg = ids[prev:]
        if seg.size:
            parts.append(body[seg].tobytes())
        return b"".join(parts)

    body = flat[: full_chunks * cs].reshape(full_chunks, cs)
    return body[ids].tobytes()


def gather_region_payload(
    flat: np.ndarray,
    spec: ChunkSpec,
    layout: TreeLayout,
    nodes: np.ndarray,
) -> Tuple[bytes, np.ndarray]:
    """Concatenate the byte ranges covered by tree *nodes*, in order.

    Returns ``(payload, region_lengths)`` where ``region_lengths[i]`` is the
    byte length of region *i* — the deserializer needs the running offsets.
    """
    node_arr = np.asarray(nodes, dtype=np.int64)
    if node_arr.size == 0:
        return b"", np.empty(0, dtype=np.int64)
    if node_arr.min() < 0 or node_arr.max() >= layout.num_nodes:
        raise SerializationError("node id out of range for payload gather")

    starts = layout.leaf_start[node_arr]
    counts = layout.leaf_count[node_arr]
    parts = []
    lengths = np.empty(node_arr.shape[0], dtype=np.int64)
    for i in range(node_arr.shape[0]):
        b0, b1 = spec.range_bounds(int(starts[i]), int(counts[i]))
        parts.append(flat[b0:b1])
        lengths[i] = b1 - b0
    payload = np.concatenate(parts).tobytes() if parts else b""
    return payload, lengths


def region_byte_lengths(
    spec: ChunkSpec, layout: TreeLayout, nodes: Sequence[int]
) -> np.ndarray:
    """Byte length of each node's chunk range (no data movement)."""
    node_arr = np.asarray(nodes, dtype=np.int64)
    b0, b1 = node_region_bounds(spec, layout, node_arr)
    return b1 - b0


def node_region_bounds(
    spec: ChunkSpec, layout: TreeLayout, nodes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :meth:`ChunkSpec.range_bounds` over tree *nodes*.

    Returns ``(starts, ends)`` byte bounds per node.  Node ids must be
    validated by the caller; out-of-range ids raise
    :class:`SerializationError` here.
    """
    node_arr = np.asarray(nodes, dtype=np.int64)
    if node_arr.size and (node_arr.min() < 0 or node_arr.max() >= layout.num_nodes):
        raise SerializationError("node id out of range for region bounds")
    starts = layout.leaf_start[node_arr] * spec.chunk_size
    ends = np.minimum(
        (layout.leaf_start[node_arr] + layout.leaf_count[node_arr])
        * spec.chunk_size,
        spec.data_len,
    )
    return starts.astype(np.int64), ends.astype(np.int64)


def expand_node_chunks(
    layout: TreeLayout, nodes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand tree *nodes* into the flat chunk ids their regions cover.

    Returns ``(chunks, region_of, within)``: for each covered chunk, its
    chunk id, the index into *nodes* of the region it belongs to, and its
    position inside that region.  Pure index arithmetic (repeat + cumsum),
    no Python loop over regions.
    """
    node_arr = np.asarray(nodes, dtype=np.int64)
    if node_arr.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    if node_arr.min() < 0 or node_arr.max() >= layout.num_nodes:
        raise SerializationError("node id out of range for region expansion")
    starts = layout.leaf_start[node_arr]
    counts = layout.leaf_count[node_arr]
    total = int(counts.sum())
    region_of = np.repeat(np.arange(node_arr.shape[0], dtype=np.int64), counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    chunks = np.repeat(starts, counts) + within
    return chunks, region_of, within


def chunk_payload_offsets(
    spec: ChunkSpec, chunk_ids: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Running payload offsets for *chunk_ids* concatenated in order.

    Returns ``(offsets, lengths, total)`` where ``offsets[i]`` is the byte
    offset of chunk ``chunk_ids[i]`` inside the concatenated payload and
    ``total`` the payload length.  Chunk ids must already be validated.
    """
    ids = np.asarray(chunk_ids, dtype=np.int64)
    lengths = np.full(ids.shape[0], spec.chunk_size, dtype=np.int64)
    if spec.data_len % spec.chunk_size:
        lengths[ids == spec.num_chunks - 1] = spec.tail_len
    if ids.size == 0:
        return np.empty(0, dtype=np.int64), lengths, 0
    offsets = np.empty(ids.shape[0], dtype=np.int64)
    offsets[0] = 0
    np.cumsum(lengths[:-1], out=offsets[1:])
    return offsets, lengths, int(lengths.sum())


def pack_bitmap(changed: np.ndarray) -> np.ndarray:
    """Pack a boolean changed-chunk mask into a uint8 bitmap (LSB-first)."""
    if changed.dtype != bool or changed.ndim != 1:
        raise SerializationError("bitmap packing expects a 1-D boolean mask")
    return np.packbits(changed.astype(np.uint8), bitorder="little")


def unpack_bitmap(bitmap: np.ndarray, num_chunks: int) -> np.ndarray:
    """Inverse of :func:`pack_bitmap`, truncated to *num_chunks* entries."""
    bits = np.unpackbits(np.asarray(bitmap, dtype=np.uint8), bitorder="little")
    if bits.shape[0] < num_chunks:
        raise SerializationError(
            f"bitmap holds {bits.shape[0]} bits, need {num_chunks}"
        )
    return bits[:num_chunks].astype(bool)
