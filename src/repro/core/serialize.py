"""Payload gathering — the consolidation step of §2.1/§2.4.

First-occurrence chunks are scattered across the checkpoint buffer; the
paper gathers them into one contiguous device buffer (team-of-threads
copies, coalesced accesses) so a *single* D2H transfer moves the whole
diff.  These helpers perform the equivalent vectorized gathers and report
the byte traffic so the engines can meter the serialization kernel.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import SerializationError
from .chunking import ChunkSpec
from .merkle import TreeLayout


def gather_chunk_payload(
    flat: np.ndarray, spec: ChunkSpec, chunk_ids: np.ndarray
) -> bytes:
    """Concatenate the bytes of *chunk_ids* (ascending or not) in order.

    Fast path: all-full-size chunks gather via a single reshape+fancy-index;
    the (at most one) tail chunk is patched in afterwards.
    """
    ids = np.asarray(chunk_ids, dtype=np.int64)
    if ids.size == 0:
        return b""
    if ids.min() < 0 or ids.max() >= spec.num_chunks:
        raise SerializationError("chunk id out of range for payload gather")

    cs = spec.chunk_size
    full_chunks = spec.data_len // cs
    has_tail = spec.data_len % cs != 0

    tail_positions = np.nonzero(ids == spec.num_chunks - 1)[0] if has_tail else []
    if has_tail and len(tail_positions):
        parts = []
        body = flat[: full_chunks * cs].reshape(full_chunks, cs)
        # Split around tail occurrences to preserve order.
        prev = 0
        for pos in tail_positions:
            seg = ids[prev:pos]
            if seg.size:
                parts.append(body[seg].tobytes())
            start, end = spec.chunk_bounds(spec.num_chunks - 1)
            parts.append(flat[start:end].tobytes())
            prev = pos + 1
        seg = ids[prev:]
        if seg.size:
            parts.append(body[seg].tobytes())
        return b"".join(parts)

    body = flat[: full_chunks * cs].reshape(full_chunks, cs)
    return body[ids].tobytes()


def gather_region_payload(
    flat: np.ndarray,
    spec: ChunkSpec,
    layout: TreeLayout,
    nodes: np.ndarray,
) -> Tuple[bytes, np.ndarray]:
    """Concatenate the byte ranges covered by tree *nodes*, in order.

    Returns ``(payload, region_lengths)`` where ``region_lengths[i]`` is the
    byte length of region *i* — the deserializer needs the running offsets.
    """
    node_arr = np.asarray(nodes, dtype=np.int64)
    if node_arr.size == 0:
        return b"", np.empty(0, dtype=np.int64)
    if node_arr.min() < 0 or node_arr.max() >= layout.num_nodes:
        raise SerializationError("node id out of range for payload gather")

    starts = layout.leaf_start[node_arr]
    counts = layout.leaf_count[node_arr]
    parts = []
    lengths = np.empty(node_arr.shape[0], dtype=np.int64)
    for i in range(node_arr.shape[0]):
        b0, b1 = spec.range_bounds(int(starts[i]), int(counts[i]))
        parts.append(flat[b0:b1])
        lengths[i] = b1 - b0
    payload = np.concatenate(parts).tobytes() if parts else b""
    return payload, lengths


def region_byte_lengths(
    spec: ChunkSpec, layout: TreeLayout, nodes: Sequence[int]
) -> np.ndarray:
    """Byte length of each node's chunk range (no data movement)."""
    node_arr = np.asarray(nodes, dtype=np.int64)
    lengths = np.empty(node_arr.shape[0], dtype=np.int64)
    for i, node in enumerate(node_arr):
        b0, b1 = spec.range_bounds(
            int(layout.leaf_start[node]), int(layout.leaf_count[node])
        )
        lengths[i] = b1 - b0
    return lengths


def pack_bitmap(changed: np.ndarray) -> np.ndarray:
    """Pack a boolean changed-chunk mask into a uint8 bitmap (LSB-first)."""
    if changed.dtype != bool or changed.ndim != 1:
        raise SerializationError("bitmap packing expects a 1-D boolean mask")
    return np.packbits(changed.astype(np.uint8), bitorder="little")


def unpack_bitmap(bitmap: np.ndarray, num_chunks: int) -> np.ndarray:
    """Inverse of :func:`pack_bitmap`, truncated to *num_chunks* entries."""
    bits = np.unpackbits(np.asarray(bitmap, dtype=np.uint8), bitorder="little")
    if bits.shape[0] < num_chunks:
        raise SerializationError(
            f"bitmap holds {bits.shape[0]} bits, need {num_chunks}"
        )
    return bits[:num_chunks].astype(bool)
