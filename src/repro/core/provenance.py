"""Chunk-provenance index: restore without chain replay.

Chain replay reconstructs checkpoint *k* by applying every diff ``0..k``
in order — O(chain) buffer copies no matter what *k* actually references.
But the diff chain fully determines, for every chunk of checkpoint *k*,
*which stored payload byte range holds its bytes*: a chunk last written as
a first occurrence of checkpoint *t* lives in diff *t*'s payload; a chunk
covered by a shifted duplicate inherits the provenance of the chunk it
references; an untouched chunk keeps the previous checkpoint's entry.

:class:`ProvenanceBuilder` composes that mapping transitively as diffs
are appended — one vectorized pass per diff, one fancy-index composition
per *unique* referenced checkpoint — yielding a
:class:`ProvenanceIndex` per checkpoint: two flat arrays ``src_ckpt``
(int32, ``-1`` = never written, i.e. implicit zeros) and ``src_off``
(int64 byte offset into the *decompressed* payload of diff ``src_ckpt``).

Materializing checkpoint *k* is then one batched gather per referenced
source payload — typically a handful of diffs out of an arbitrarily long
chain — and a cold restart from disk only has to *parse the frames the
index names* (:func:`restore_record_indexed`), because
:func:`~repro.core.store.save_record` persists the stacked index
(:class:`ProvenanceTable`) next to the record manifest with the same
digest discipline as the ``.rdif`` frames.

The composition relies on the engines' serialization invariant (§2.2):
shifted-duplicate references point at content stored as a first
occurrence, never at bytes another shifted duplicate of the same diff
wrote.  Every restore path in the test suite asserts bit-identity against
chain replay.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..telemetry import events
from ..errors import IntegrityError, RestoreError
from .chunking import ChunkSpec
from .diff import CheckpointDiff
from .merkle import TreeLayout
from .restore import scrub_chain
from .serialize import (
    chunk_payload_offsets,
    expand_node_chunks,
    node_region_bounds,
    unpack_bitmap,
)

#: ``src_ckpt`` value for chunks never written by any diff (implicit zeros).
ZERO_SOURCE = -1

_TABLE_MAGIC = b"RPIX"
#: v1: raw little-endian ``i4`` + ``i8`` arrays.  v2: the same arrays
#: delta+RLE+bitpacked per plane (``src_ckpt``, and ``src_off`` split
#: into low/high u32 words) with the cascaded codec — the rows are runny
#: (long runs of identical sources, arithmetic offset progressions), so
#: the 12 B/chunk raw encoding shrinks toward 1–2 B/chunk.
#: v3: the append-optimized layout — a fixed prologue (header + header
#: digest) followed by self-contained *row-group* records, one per
#: appended checkpoint, each carrying its own digest and the same three
#: compressed planes over just its rows.  Appending a checkpoint writes
#: one group record and rewrites the 60-byte prologue in place; nothing
#: else on disk is touched.
_TABLE_VERSION_V1 = 1
_TABLE_VERSION = 2
_TABLE_VERSION_V3 = 3
_TABLE_HEADER = struct.Struct("<4sHHIIQI")
# magic, version, reserved, num_checkpoints, num_chunks, data_len, chunk_size
_TABLE_DIGEST_BYTES = 32
_PLANE_LEN = struct.Struct("<Q")
#: v3 row-group record header: body length, first checkpoint row, row
#: count, SHA-256 over ``pack("<II", first_ckpt, num_rows) + body``.
_GROUP_HEADER = struct.Struct("<QII32s")
#: Fixed v3 prologue: table header + SHA-256 of the header bytes.  An
#: append rewrites exactly this region (the row count lives here) and
#: appends one group record after the last — O(rows in this checkpoint).
V3_PROLOGUE_BYTES = _TABLE_HEADER.size + _TABLE_DIGEST_BYTES
#: Raw (v1) index bytes per chunk per checkpoint: i4 src_ckpt + i8 src_off.
RAW_INDEX_BYTES_PER_CHUNK = 12


def _pack_planes(src_ckpt: np.ndarray, src_off: np.ndarray) -> bytes:
    """Three length-prefixed cascaded-compressed planes over the rows.

    ``src_off`` is split into low/high u32 words (rather than
    interleaving an i8 stream) so the delta pass sees the arithmetic
    progression directly and the high plane is almost entirely zero runs.
    """
    from ..compress.cascaded import CascadedCodec  # local: core ↔ compress

    codec = CascadedCodec()
    ckpt_plane = np.ascontiguousarray(src_ckpt, dtype="<i4").tobytes()
    off = np.ascontiguousarray(src_off, dtype=np.int64)
    lo_plane = (off & np.int64(0xFFFFFFFF)).astype("<u4").tobytes()
    hi_plane = (off >> np.int64(32)).astype("<u4").tobytes()
    parts = [codec.compress(p) for p in (ckpt_plane, lo_plane, hi_plane)]
    return b"".join(_PLANE_LEN.pack(len(p)) + p for p in parts)


def _unpack_planes(
    buf: bytes, n_rows: int, n_chunks: int, off: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Decode the three planes back into ``(src_ckpt, src_off)`` arrays.

    Consumes *buf* from *off* to its end — trailing bytes are damage.
    """
    from ..compress.cascaded import CascadedCodec  # local: core ↔ compress
    from ..errors import CompressionError

    codec = CascadedCodec()
    count = n_rows * n_chunks
    planes = []
    for name in ("src_ckpt", "src_off_lo", "src_off_hi"):
        if off + _PLANE_LEN.size > len(buf):
            raise IntegrityError(
                f"provenance index truncated before {name} plane"
            )
        (length,) = _PLANE_LEN.unpack_from(buf, off)
        off += _PLANE_LEN.size
        if off + length > len(buf):
            raise IntegrityError(
                f"provenance index {name} plane overruns the file"
            )
        try:
            raw = codec.decompress(buf[off : off + length])
        except CompressionError as exc:
            raise IntegrityError(
                f"provenance index {name} plane is damaged: {exc}"
            ) from exc
        if len(raw) != count * 4:
            raise IntegrityError(
                f"provenance index {name} plane holds {len(raw)} bytes, "
                f"expected {count * 4}"
            )
        planes.append(raw)
        off += length
    if off != len(buf):
        raise IntegrityError(
            f"provenance index has {len(buf) - off} trailing bytes"
        )
    src_ckpt = (
        np.frombuffer(planes[0], dtype="<i4").reshape(n_rows, n_chunks).copy()
    )
    lo = np.frombuffer(planes[1], dtype="<u4").astype(np.int64)
    hi = np.frombuffer(planes[2], dtype="<u4").astype(np.int64)
    src_off = ((hi << np.int64(32)) | lo).reshape(n_rows, n_chunks)
    return src_ckpt, src_off


@dataclass
class ProvenanceIndex:
    """Resolved chunk sources of one checkpoint.

    ``src_ckpt[c]`` is the checkpoint whose payload holds chunk *c*'s
    bytes (:data:`ZERO_SOURCE` for implicit zeros); ``src_off[c]`` the
    byte offset of those bytes inside that payload (after payload-codec
    decompression, for hybrid tree diffs).
    """

    ckpt_id: int
    data_len: int
    chunk_size: int
    src_ckpt: np.ndarray  # int32, shape (num_chunks,)
    src_off: np.ndarray  # int64, shape (num_chunks,)

    @property
    def num_chunks(self) -> int:
        return int(self.src_ckpt.shape[0])

    def referenced(self) -> np.ndarray:
        """Checkpoints whose payloads this checkpoint's bytes live in."""
        uniq = np.unique(self.src_ckpt)
        return uniq[uniq >= 0].astype(np.int64)


class ProvenanceBuilder:
    """Incrementally composes :class:`ProvenanceIndex` rows over a chain.

    Append diffs in chain order (``append`` validates ordering and
    geometry); ``index_for(k)`` returns checkpoint *k*'s resolved index.
    The builder holds one int32+int64 pair per chunk per checkpoint —
    metadata-sized, never payload-sized.
    """

    def __init__(self) -> None:
        self.indexes: List[ProvenanceIndex] = []
        self._layouts: Dict[int, TreeLayout] = {}

    def __len__(self) -> int:
        return len(self.indexes)

    def reset(self) -> None:
        """Drop all rows (a crashed process restarts its chain at 0)."""
        self.indexes.clear()

    def extend(self, diffs: Sequence[CheckpointDiff]) -> None:
        for diff in diffs:
            self.append(diff)

    def seed(self, table: "ProvenanceTable") -> None:
        """Adopt a decoded table's rows as the already-composed prefix.

        :class:`~repro.core.store.RecordWriter` reopens a record by
        decoding its persisted index once and seeding the builder from
        it, so appends resume without re-deriving provenance from the
        diff chain.
        """
        if self.indexes:
            raise RestoreError("cannot seed a non-empty provenance builder")
        for k in range(table.num_checkpoints):
            self.indexes.append(table.row(k))

    def index_for(self, ckpt_id: int) -> ProvenanceIndex:
        if not 0 <= ckpt_id < len(self.indexes):
            raise RestoreError(
                f"checkpoint {ckpt_id} outside indexed chain of {len(self.indexes)}"
            )
        return self.indexes[ckpt_id]

    # ------------------------------------------------------------------
    def append(self, diff: CheckpointDiff) -> ProvenanceIndex:
        """Compose the next checkpoint's index from *diff*."""
        k = len(self.indexes)
        if diff.ckpt_id != k:
            raise RestoreError(
                f"diff chain out of order: position {k} holds "
                f"checkpoint {diff.ckpt_id}"
            )
        spec = ChunkSpec(diff.data_len, diff.chunk_size)
        if self.indexes:
            prev = self.indexes[-1]
            if prev.data_len != diff.data_len:
                raise RestoreError(
                    f"checkpoint length changed mid-chain at {k}"
                )
            src_ckpt = prev.src_ckpt.copy()
            src_off = prev.src_off.copy()
        else:
            src_ckpt = np.full(spec.num_chunks, ZERO_SOURCE, dtype=np.int32)
            src_off = np.zeros(spec.num_chunks, dtype=np.int64)

        cs = spec.chunk_size
        if diff.method == "full":
            src_ckpt[:] = k
            src_off[:] = np.arange(spec.num_chunks, dtype=np.int64) * cs
        elif diff.method == "basic":
            changed = unpack_bitmap(diff.bitmap, spec.num_chunks)
            chunks = np.nonzero(changed)[0].astype(np.int64)
            offsets, _, _ = chunk_payload_offsets(spec, chunks)
            src_ckpt[chunks] = k
            src_off[chunks] = offsets
        else:
            first_chunks, first_offs = self._first_occurrence_chunks(diff, spec)
            src_ckpt[first_chunks] = k
            src_off[first_chunks] = first_offs
            dst, src, refs = self._shift_chunks(diff, spec)
            if refs.size:
                if int(refs.max()) > k:
                    raise RestoreError(
                        f"shifted duplicate references checkpoint "
                        f"{int(refs.max())}, which is not reconstructed yet"
                    )
                for t in np.unique(refs):
                    sel = refs == t
                    if t == k:
                        s_ck, s_off = src_ckpt, src_off
                    else:
                        ref_index = self.indexes[int(t)]
                        s_ck, s_off = ref_index.src_ckpt, ref_index.src_off
                    src_ckpt[dst[sel]] = s_ck[src[sel]]
                    src_off[dst[sel]] = s_off[src[sel]]

        index = ProvenanceIndex(
            ckpt_id=k,
            data_len=diff.data_len,
            chunk_size=diff.chunk_size,
            src_ckpt=src_ckpt,
            src_off=src_off,
        )
        self.indexes.append(index)
        return index

    def _first_occurrence_chunks(
        self, diff: CheckpointDiff, spec: ChunkSpec
    ) -> Tuple[np.ndarray, np.ndarray]:
        """First-occurrence chunk ids + their payload byte offsets."""
        firsts = diff.first_ids.astype(np.int64)
        if diff.method == "list":
            if firsts.size and (
                firsts.min() < 0 or firsts.max() >= spec.num_chunks
            ):
                raise RestoreError(
                    f"chunk id {int(firsts.max())} outside checkpoint of "
                    f"{spec.num_chunks} chunks"
                )
            offsets, _, _ = chunk_payload_offsets(spec, firsts)
            return firsts, offsets
        layout = self._layout_for(spec.num_chunks)
        self._check_nodes(layout, firsts)
        r0, r1 = node_region_bounds(spec, layout, firsts)
        region_lengths = r1 - r0
        region_offsets = np.empty(firsts.shape[0], dtype=np.int64)
        if firsts.size:
            region_offsets[0] = 0
            np.cumsum(region_lengths[:-1], out=region_offsets[1:])
        chunks, region_of, within = expand_node_chunks(layout, firsts)
        return chunks, region_offsets[region_of] + within * spec.chunk_size

    def _shift_chunks(
        self, diff: CheckpointDiff, spec: ChunkSpec
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shifted-duplicate (dst chunk, src chunk, ref ckpt) triples."""
        if diff.num_shift == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        refs = diff.shift_ref_ckpts.astype(np.int64)
        if diff.method == "list":
            dst = diff.shift_ids.astype(np.int64)
            src = diff.shift_ref_ids.astype(np.int64)
            for arr in (dst, src):
                if arr.min() < 0 or arr.max() >= spec.num_chunks:
                    raise RestoreError(
                        f"chunk id {int(arr.max())} outside checkpoint of "
                        f"{spec.num_chunks} chunks"
                    )
            return dst, src, refs
        layout = self._layout_for(spec.num_chunks)
        dst_nodes = diff.shift_ids.astype(np.int64)
        src_nodes = diff.shift_ref_ids.astype(np.int64)
        self._check_nodes(layout, dst_nodes)
        self._check_nodes(layout, src_nodes)
        d0, d1 = node_region_bounds(spec, layout, dst_nodes)
        s0, s1 = node_region_bounds(spec, layout, src_nodes)
        bad = np.nonzero((d1 - d0) != (s1 - s0))[0]
        if bad.size:
            raise RestoreError(
                f"shifted region {int(dst_nodes[bad[0]])} length mismatch"
            )
        dst_chunks, dst_region, _ = expand_node_chunks(layout, dst_nodes)
        src_chunks, _, _ = expand_node_chunks(layout, src_nodes)
        return dst_chunks, src_chunks, refs[dst_region]

    def _layout_for(self, num_chunks: int) -> TreeLayout:
        layout = self._layouts.get(num_chunks)
        if layout is None:
            layout = TreeLayout(num_chunks)
            self._layouts[num_chunks] = layout
        return layout

    @staticmethod
    def _check_nodes(layout: TreeLayout, nodes: np.ndarray) -> None:
        if nodes.size and (nodes.min() < 0 or nodes.max() >= layout.num_nodes):
            bad = int(nodes.min()) if nodes.min() < 0 else int(nodes.max())
            raise RestoreError(
                f"node id {bad} outside tree of {layout.num_nodes}"
            )


@dataclass
class ProvenanceTable:
    """All checkpoints' provenance rows, stacked — the persisted form.

    Row *k* (``row(k)``) is checkpoint *k*'s :class:`ProvenanceIndex`.
    The wire encoding mirrors the ``.rdif`` discipline: fixed header, a
    SHA-256 content digest over header+body, then the two little-endian
    arrays — so a bit flip anywhere in a stored index is detected at
    parse time.
    """

    data_len: int
    chunk_size: int
    src_ckpt: np.ndarray  # int32, shape (num_checkpoints, num_chunks)
    src_off: np.ndarray  # int64, shape (num_checkpoints, num_chunks)
    #: Rows the on-disk index covers in full — equals the rows decoded
    #: here except after a selective ``upto`` load of a v3 index, which
    #: skips row-groups past the target checkpoint.
    index_rows: Optional[int] = None

    @property
    def num_checkpoints(self) -> int:
        return int(self.src_ckpt.shape[0])

    @property
    def total_checkpoints(self) -> int:
        """Checkpoints the full on-disk index covers (≥ rows decoded)."""
        return (
            self.index_rows if self.index_rows is not None
            else self.num_checkpoints
        )

    @property
    def num_chunks(self) -> int:
        return int(self.src_ckpt.shape[1])

    def row(self, ckpt_id: int) -> ProvenanceIndex:
        if not 0 <= ckpt_id < self.num_checkpoints:
            raise RestoreError(
                f"checkpoint {ckpt_id} outside indexed chain of "
                f"{self.num_checkpoints}"
            )
        return ProvenanceIndex(
            ckpt_id=ckpt_id,
            data_len=self.data_len,
            chunk_size=self.chunk_size,
            src_ckpt=self.src_ckpt[ckpt_id],
            src_off=self.src_off[ckpt_id],
        )

    @classmethod
    def from_builder(cls, builder: ProvenanceBuilder) -> "ProvenanceTable":
        if not builder.indexes:
            raise RestoreError("cannot build a provenance table from no diffs")
        first = builder.indexes[0]
        return cls(
            data_len=first.data_len,
            chunk_size=first.chunk_size,
            src_ckpt=np.stack([i.src_ckpt for i in builder.indexes]),
            src_off=np.stack([i.src_off for i in builder.indexes]),
        )

    @classmethod
    def from_diffs(cls, diffs: Sequence[CheckpointDiff]) -> "ProvenanceTable":
        builder = ProvenanceBuilder()
        builder.extend(diffs)
        return cls.from_builder(builder)

    # ------------------------------------------------------------------
    @property
    def raw_index_bytes(self) -> int:
        """Uncompressed (v1-equivalent) array bytes: 12 B/chunk/checkpoint."""
        return self.num_checkpoints * self.num_chunks * RAW_INDEX_BYTES_PER_CHUNK

    def to_bytes(self) -> bytes:
        header = _TABLE_HEADER.pack(
            _TABLE_MAGIC,
            _TABLE_VERSION,
            0,
            self.num_checkpoints,
            self.num_chunks,
            self.data_len,
            self.chunk_size,
        )
        body = self._encode_planes()
        digest = hashlib.sha256(header + body).digest()
        return header + digest + body

    def _encode_planes(self) -> bytes:
        """v2 body: three length-prefixed cascaded-compressed planes."""
        return _pack_planes(self.src_ckpt, self.src_off)

    @classmethod
    def from_bytes(cls, blob: bytes, verify: bool = True) -> "ProvenanceTable":
        if len(blob) < _TABLE_HEADER.size + _TABLE_DIGEST_BYTES:
            raise IntegrityError(
                f"provenance index too short ({len(blob)} bytes)"
            )
        magic, version, _reserved, n_ckpts, n_chunks, data_len, chunk_size = (
            _TABLE_HEADER.unpack_from(blob, 0)
        )
        if magic != _TABLE_MAGIC:
            raise IntegrityError(f"bad provenance index magic {magic!r}")
        if version == _TABLE_VERSION_V3:
            return read_v3(blob, verify=verify)
        if version not in (_TABLE_VERSION_V1, _TABLE_VERSION):
            raise IntegrityError(f"unsupported provenance index version {version}")
        off = _TABLE_HEADER.size
        stored_digest = blob[off : off + _TABLE_DIGEST_BYTES]
        off += _TABLE_DIGEST_BYTES
        count = n_ckpts * n_chunks
        if version == _TABLE_VERSION_V1:
            need = off + count * RAW_INDEX_BYTES_PER_CHUNK
            if len(blob) != need:
                raise IntegrityError(
                    f"provenance index length {len(blob)} != expected {need}"
                )
        if verify:
            actual = hashlib.sha256()
            actual.update(blob[: _TABLE_HEADER.size])
            actual.update(blob[off:])
            if actual.digest() != stored_digest:
                raise IntegrityError(
                    f"provenance index digest mismatch "
                    f"(stored {stored_digest.hex()[:16]}…, "
                    f"computed {actual.hexdigest()[:16]}…)"
                )
        if version == _TABLE_VERSION_V1:
            src_ckpt = (
                np.frombuffer(blob, dtype="<i4", count=count, offset=off)
                .reshape(n_ckpts, n_chunks)
                .copy()
            )
            src_off = (
                np.frombuffer(blob, dtype="<i8", count=count, offset=off + 4 * count)
                .reshape(n_ckpts, n_chunks)
                .copy()
            )
        else:
            src_ckpt, src_off = cls._decode_planes(blob, off, n_ckpts, n_chunks)
        return cls(
            data_len=data_len,
            chunk_size=chunk_size,
            src_ckpt=src_ckpt,
            src_off=src_off,
        )

    @staticmethod
    def _decode_planes(
        blob: bytes, off: int, n_ckpts: int, n_chunks: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        return _unpack_planes(blob, n_ckpts, n_chunks, off=off)


# ----------------------------------------------------------------------
# RPIX v3: append-only row-group layout
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RowGroup:
    """Structural description of one v3 row-group (body not yet decoded)."""

    first_ckpt: int
    num_rows: int
    digest: bytes
    body_off: int
    body_len: int


def encode_v3_prologue(
    num_checkpoints: int, num_chunks: int, data_len: int, chunk_size: int
) -> bytes:
    """The fixed-size v3 file prologue: header + SHA-256 of the header."""
    header = _TABLE_HEADER.pack(
        _TABLE_MAGIC,
        _TABLE_VERSION_V3,
        0,
        num_checkpoints,
        num_chunks,
        data_len,
        chunk_size,
    )
    return header + hashlib.sha256(header).digest()


def encode_v3_group(
    first_ckpt: int, src_ckpt: np.ndarray, src_off: np.ndarray
) -> Tuple[bytes, bytes]:
    """Encode one self-contained row-group record.

    *src_ckpt*/*src_off* are 2-D ``(num_rows, num_chunks)`` row slices.
    Returns ``(record_bytes, group_digest)`` — the digest also feeds the
    manifest's rolling ``chain_sha256`` over all group digests.
    """
    rows = int(np.atleast_2d(src_ckpt).shape[0])
    body = _pack_planes(src_ckpt, src_off)
    digest = hashlib.sha256(
        struct.pack("<II", first_ckpt, rows) + body
    ).digest()
    return _GROUP_HEADER.pack(len(body), first_ckpt, rows, digest) + body, digest


def scan_v3(
    blob: bytes, max_rows: Optional[int] = None
) -> Tuple[dict, List[RowGroup]]:
    """Structurally walk a v3 blob: prologue + group framing, no bodies.

    Verifies the header digest and group framing only — group *bodies*
    are hashed later, and only for the groups a caller actually decodes.
    With *max_rows* (the manifest's authoritative row count) the walk
    stops once that many rows are covered and tolerates trailing bytes:
    a crash between the group append and the manifest update leaves an
    orphan group that the next writer open truncates away.
    """
    if len(blob) < V3_PROLOGUE_BYTES:
        raise IntegrityError(f"provenance index too short ({len(blob)} bytes)")
    magic, version, _reserved, n_ckpts, n_chunks, data_len, chunk_size = (
        _TABLE_HEADER.unpack_from(blob, 0)
    )
    if magic != _TABLE_MAGIC:
        raise IntegrityError(f"bad provenance index magic {magic!r}")
    if version != _TABLE_VERSION_V3:
        raise IntegrityError(
            f"unsupported provenance index version {version} (expected v3)"
        )
    stored = blob[_TABLE_HEADER.size : V3_PROLOGUE_BYTES]
    if hashlib.sha256(blob[: _TABLE_HEADER.size]).digest() != stored:
        raise IntegrityError("provenance index header digest mismatch")
    want = n_ckpts if max_rows is None else max_rows
    groups: List[RowGroup] = []
    rows = 0
    off = V3_PROLOGUE_BYTES
    while rows < want:
        if off + _GROUP_HEADER.size > len(blob):
            raise IntegrityError(
                f"provenance index truncated: holds {rows} of {want} rows"
            )
        body_len, first, g_rows, digest = _GROUP_HEADER.unpack_from(blob, off)
        off += _GROUP_HEADER.size
        if first != rows or g_rows <= 0:
            raise IntegrityError(
                f"provenance index row-group claims rows "
                f"{first}..{first + g_rows}, expected to start at {rows}"
            )
        if off + body_len > len(blob):
            raise IntegrityError(
                f"provenance index row-group {first} body overruns the file"
            )
        groups.append(RowGroup(first, g_rows, digest, off, body_len))
        off += body_len
        rows += g_rows
    if max_rows is None and (rows != want or off != len(blob)):
        raise IntegrityError(
            f"provenance index row-groups hold {rows} rows and "
            f"{len(blob) - off} trailing bytes; header claims {want} rows"
        )
    header = {
        "num_checkpoints": n_ckpts,
        "num_chunks": n_chunks,
        "data_len": data_len,
        "chunk_size": chunk_size,
    }
    return header, groups


def verify_v3_group(blob: bytes, group: RowGroup) -> bool:
    """Whether a row-group's stored digest matches its bytes."""
    actual = hashlib.sha256(
        struct.pack("<II", group.first_ckpt, group.num_rows)
        + blob[group.body_off : group.body_off + group.body_len]
    ).digest()
    return actual == group.digest


def decode_v3_groups(
    blob: bytes,
    groups: Sequence[RowGroup],
    n_chunks: int,
    verify: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Decode (a contiguous prefix of) row-groups into stacked planes."""
    if not groups:
        raise IntegrityError("provenance index holds no row-groups")
    parts_ckpt = []
    parts_off = []
    for g in groups:
        body = blob[g.body_off : g.body_off + g.body_len]
        if verify and not verify_v3_group(blob, g):
            raise IntegrityError(
                f"provenance index row-group {g.first_ckpt} digest mismatch "
                f"(stored {g.digest.hex()[:16]}…)"
            )
        try:
            ck, off_arr = _unpack_planes(body, g.num_rows, n_chunks)
        except IntegrityError as exc:
            raise IntegrityError(
                f"provenance index row-group {g.first_ckpt} is damaged: {exc}"
            ) from exc
        parts_ckpt.append(ck)
        parts_off.append(off_arr)
    return (
        np.concatenate(parts_ckpt, axis=0),
        np.concatenate(parts_off, axis=0),
    )


def read_v3(
    blob: bytes,
    rows: Optional[int] = None,
    upto: Optional[int] = None,
    verify: bool = True,
) -> ProvenanceTable:
    """Load a v3 blob, optionally decoding only the groups a restore needs.

    *rows* is the authoritative row count (the manifest's, which lags the
    header across a crashed append); *upto* restricts decoding — and
    digest verification — to the groups covering checkpoints ``0..upto``,
    so a restore of checkpoint K never touches groups past K and damage
    in later groups cannot block earlier restores.
    """
    header, groups = scan_v3(blob, max_rows=rows)
    total = rows if rows is not None else header["num_checkpoints"]
    if upto is not None:
        if upto >= total:
            raise RestoreError(
                f"checkpoint {upto} outside indexed chain of {total}"
            )
        groups = [g for g in groups if g.first_ckpt <= upto]
    src_ckpt, src_off = decode_v3_groups(
        blob, groups, header["num_chunks"], verify=verify
    )
    return ProvenanceTable(
        data_len=header["data_len"],
        chunk_size=header["chunk_size"],
        src_ckpt=src_ckpt,
        src_off=src_off,
        index_rows=total,
    )


# ----------------------------------------------------------------------
# Lineage analytics (the attribution plane reads these)
# ----------------------------------------------------------------------
def lineage_depths(table: ProvenanceTable) -> np.ndarray:
    """Restore-gather hop distance of every chunk of every checkpoint.

    Entry ``[k, c]`` is how many checkpoints back checkpoint *k* reaches
    for chunk *c*'s bytes (``k - src_ckpt``); self-sourced chunks and
    implicit zeros are depth 0.  Because the table is fully transitively
    resolved, this is exactly the age of the payload a restore-time
    gather touches — derivable on cold records without replay.
    """
    rows = np.arange(table.num_checkpoints, dtype=np.int64)[:, None]
    depth = rows - table.src_ckpt.astype(np.int64)
    depth[table.src_ckpt == ZERO_SOURCE] = 0
    return depth


def cell_reference_counts(table: ProvenanceTable) -> Tuple[np.ndarray, int]:
    """How many table entries resolve to each chunk's payload cell.

    A *cell* is one distinct ``(src_ckpt, src_off)`` pair — one stored
    chunk's bytes on disk.  Returns ``(counts, num_cells)``: ``counts``
    has the table's shape and gives, per entry, the total number of
    entries anywhere in the table sharing its cell (≥ 1; 0 for implicit
    zeros); ``num_cells`` is the number of distinct non-zero cells, i.e.
    the record's unique stored-chunk population.
    """
    keys = np.empty(
        table.src_ckpt.size, dtype=[("c", "<i8"), ("o", "<i8")]
    )
    keys["c"] = table.src_ckpt.astype(np.int64).ravel()
    keys["o"] = table.src_off.astype(np.int64).ravel()
    uniq, inverse, counts = np.unique(
        keys, return_inverse=True, return_counts=True
    )
    per_entry = counts[inverse].astype(np.int64)
    zero = keys["c"] == ZERO_SOURCE
    per_entry[zero] = 0
    num_cells = int(np.count_nonzero(uniq["c"] >= 0))
    return per_entry.reshape(table.src_ckpt.shape), num_cells


# ----------------------------------------------------------------------
# Materialization
# ----------------------------------------------------------------------
@dataclass
class IndexedRestoreReport:
    """What one indexed restore actually touched."""

    target_ckpt: int
    data_len: int
    chain_len: int
    #: Payload bytes gathered per referenced source checkpoint.
    payload_bytes_read: Dict[int, int] = field(default_factory=dict)

    @property
    def frames_referenced(self) -> int:
        """How many diffs' payloads the target actually lives in."""
        return len(self.payload_bytes_read)

    @property
    def total_payload_bytes_read(self) -> int:
        return sum(self.payload_bytes_read.values())


def materialize_index(
    index: ProvenanceIndex,
    payload_of: Callable[[int], np.ndarray],
    out: Optional[np.ndarray] = None,
    space=None,
    report: Optional[IndexedRestoreReport] = None,
    chunk_lo: int = 0,
    chunk_hi: Optional[int] = None,
    zero: bool = True,
    h2d: bool = True,
) -> np.ndarray:
    """Gather checkpoint bytes straight from source payloads.

    ``payload_of(t)`` must return diff *t*'s (decompressed) payload as a
    uint8 array; it is called once per checkpoint the index references.

    ``[chunk_lo, chunk_hi)`` restricts the gather to a chunk range — the
    sharding primitive: each simulated GPU of a fleet restore
    materializes its own contiguous range into the shared ``out`` buffer
    and uploads only that range (``h2d``).  ``zero=False`` skips the
    upfront zero fill (a sharded caller zeroes ``out`` once, not once
    per shard per window).  The defaults reproduce the original
    whole-buffer behavior exactly.
    """
    spec = ChunkSpec(index.data_len, index.chunk_size)
    cs = spec.chunk_size
    full = index.data_len // cs
    lo = chunk_lo
    hi = spec.num_chunks if chunk_hi is None else chunk_hi
    if not 0 <= lo <= hi <= spec.num_chunks:
        raise RestoreError(
            f"chunk range [{lo}, {hi}) outside checkpoint of "
            f"{spec.num_chunks} chunks"
        )
    if out is None:
        out = np.zeros(index.data_len, dtype=np.uint8)
    elif zero:
        out[lo * cs : min(hi * cs, index.data_len)] = 0
    body = out[: full * cs].reshape(full, cs) if full else None

    sub_ckpt = index.src_ckpt[lo:hi]
    referenced = np.unique(sub_ckpt)
    referenced = referenced[referenced >= 0]
    for t in referenced:
        t = int(t)
        payload = payload_of(t)
        sel = sub_ckpt == t
        chunks = np.nonzero(sel)[0].astype(np.int64) + lo
        offs = index.src_off[chunks]
        lengths = np.full(chunks.shape[0], cs, dtype=np.int64)
        if index.data_len % cs:
            lengths[chunks == spec.num_chunks - 1] = spec.tail_len
        if int((offs + lengths).max()) > payload.shape[0] or int(offs.min()) < 0:
            raise RestoreError(
                f"provenance index points outside checkpoint {t}'s payload"
            )
        is_full = chunks < full
        rows = chunks[is_full]
        if rows.size:
            f_offs = offs[is_full]
            n = rows.shape[0]
            if n == 1 or bool(np.all(np.diff(f_offs) == cs)):
                start = int(f_offs[0])
                body[rows] = payload[start : start + n * cs].reshape(n, cs)
            else:
                body[rows] = payload[
                    f_offs[:, None] + np.arange(cs, dtype=np.int64)
                ]
        for i in np.nonzero(~is_full)[0]:
            b0, b1 = spec.chunk_bounds(int(chunks[i]))
            off = int(offs[i])
            out[b0:b1] = payload[off : off + (b1 - b0)]
        gathered = int(lengths.sum())
        if report is not None:
            report.payload_bytes_read[t] = (
                report.payload_bytes_read.get(t, 0) + gathered
            )
        if space is not None:
            # One gather kernel per source payload: reads the gathered
            # bytes plus the index row slice once, writes them into place.
            space.launch(
                "restore.gather",
                items=int(chunks.shape[0]),
                bytes_read=gathered + (hi - lo) * RAW_INDEX_BYTES_PER_CHUNK,
                bytes_written=gathered,
            )
    if space is not None and h2d:
        extent = min(hi * cs, index.data_len) - lo * cs
        if extent > 0:
            space.transfer("H2D", extent)
    return out


class IndexedRestorer:
    """Provenance-indexed restore: the fast path of the restore overhaul.

    Drop-in for :class:`~repro.core.restore.Restorer.restore` on intact
    chains — bit-identical output, but materialized as one batched gather
    per referenced source payload instead of replaying the chain.  A
    long-lived caller (e.g. :class:`~repro.runtime.node.NodeRuntime`)
    passes its incrementally maintained :class:`ProvenanceBuilder`;
    otherwise the builder is composed on the fly (still vectorized, and
    metadata-sized rather than payload-sized work per diff).
    """

    def __init__(self, payload_codec=None, scrub: bool = False, space=None) -> None:
        self.payload_codec = payload_codec
        self.scrub = scrub
        self.space = space

    def restore(
        self,
        diffs: Sequence[CheckpointDiff],
        upto: Optional[int] = None,
        builder: Optional[ProvenanceBuilder] = None,
    ) -> np.ndarray:
        out, _ = self.restore_with_report(diffs, upto, builder)
        return out

    def restore_with_report(
        self,
        diffs: Sequence[CheckpointDiff],
        upto: Optional[int] = None,
        builder: Optional[ProvenanceBuilder] = None,
    ) -> Tuple[np.ndarray, IndexedRestoreReport]:
        if len(diffs) == 0:
            raise RestoreError("cannot restore from an empty diff chain")
        if upto is None:
            upto = len(diffs) - 1
        if not 0 <= upto < len(diffs):
            raise RestoreError(f"checkpoint {upto} outside chain of {len(diffs)}")
        if self.scrub:
            scrub_chain(diffs[: upto + 1], self.payload_codec)
        with telemetry.span(
            "restore.indexed",
            space=self.space,
            upto=upto,
            chain_len=len(diffs),
        ) as span:
            if builder is None:
                builder = ProvenanceBuilder()
            if len(builder) <= upto:
                builder.extend(diffs[len(builder) : upto + 1])
            index = builder.index_for(upto)
            if index.data_len != diffs[0].data_len:
                raise RestoreError(
                    "provenance builder does not match the supplied chain"
                )

            payloads: Dict[int, np.ndarray] = {}

            def payload_of(t: int) -> np.ndarray:
                cached = payloads.get(t)
                if cached is None:
                    cached = np.frombuffer(
                        self._payload(diffs[t]), dtype=np.uint8
                    )
                    payloads[t] = cached
                return cached

            report = IndexedRestoreReport(
                target_ckpt=upto, data_len=index.data_len, chain_len=len(diffs)
            )
            out = materialize_index(
                index, payload_of, space=self.space, report=report
            )
            span.set(
                sources=len(report.payload_bytes_read),
                payload_bytes=sum(report.payload_bytes_read.values()),
            )
        events.emit(
            events.RESTORE,
            path="indexed",
            target_ckpt=upto,
            chain_len=len(diffs),
            state_bytes=int(out.nbytes),
            payload_bytes=sum(report.payload_bytes_read.values()),
            sources=len(report.payload_bytes_read),
        )
        return out, report

    def _payload(self, diff: CheckpointDiff) -> bytes:
        if self.payload_codec is not None and diff.method == "tree":
            return self.payload_codec.decompress(diff.payload)
        return diff.payload


def indexed_restore_latest(
    diffs: Sequence[CheckpointDiff], payload_codec=None, scrub: bool = False
) -> np.ndarray:
    """Convenience wrapper: indexed reconstruction of the final checkpoint."""
    return IndexedRestorer(payload_codec=payload_codec, scrub=scrub).restore(diffs)


# ----------------------------------------------------------------------
# Cold restart from disk
# ----------------------------------------------------------------------
@dataclass
class RecordRestoreReport:
    """I/O accounting of one from-disk restore."""

    target_ckpt: int
    frames_total: int
    #: Frames actually read and parsed (index-referenced ones on the fast
    #: path; the whole record when no index is available or scrub is on).
    frames_parsed: int
    #: Total ``.rdif`` bytes the record holds on disk.
    record_bytes: int
    #: ``.rdif`` bytes actually read (+ the index file on the fast path).
    record_bytes_read: int
    index_bytes: int
    used_index: bool
    payload_bytes_read: Dict[int, int] = field(default_factory=dict)


def restore_record_indexed(
    directory,
    upto: Optional[int] = None,
    payload_codec=None,
    scrub: bool = False,
    space=None,
) -> Tuple[np.ndarray, RecordRestoreReport]:
    """Reconstruct a checkpoint from a stored record, parsing only the
    frames its provenance index names.

    Falls back to loading (and indexing) the full record when the record
    predates the index or ``scrub=True`` (scrubbing validates the whole
    chain, which needs every frame).  Frame and index integrity checks
    (PR 2's v2 digests) apply on both paths.
    """
    from .store import (  # local import: store ↔ provenance layering
        load_provenance,
        load_record,
        load_record_frames,
        record_frame_sizes,
        record_index_bytes,
        record_manifest,
    )

    manifest = record_manifest(directory)
    count = manifest["num_checkpoints"]
    if upto is None:
        upto = count - 1
    if not 0 <= upto < count:
        raise RestoreError(f"checkpoint {upto} outside record of {count}")

    frame_sizes = record_frame_sizes(directory)
    record_bytes = int(sum(frame_sizes))
    table = None if scrub else load_provenance(directory, upto=upto)

    if table is None:
        diffs = load_record(directory)
        restorer = IndexedRestorer(
            payload_codec=payload_codec, scrub=scrub, space=space
        )
        out, ireport = restorer.restore_with_report(diffs, upto)
        report = RecordRestoreReport(
            target_ckpt=upto,
            frames_total=count,
            frames_parsed=count,
            record_bytes=record_bytes,
            record_bytes_read=record_bytes,
            index_bytes=0,
            used_index=False,
            payload_bytes_read=dict(ireport.payload_bytes_read),
        )
        return out, report

    if (
        table.total_checkpoints < count
        or table.num_checkpoints <= upto
        or table.data_len != manifest.get("data_len", table.data_len)
    ):
        raise IntegrityError(
            f"provenance index covers {table.total_checkpoints} checkpoints, "
            f"record holds {count}"
        )
    index = table.row(upto)
    refs = [int(t) for t in index.referenced()]
    frames = load_record_frames(directory, refs)

    def payload_of(t: int) -> np.ndarray:
        diff = frames[t]
        if payload_codec is not None and diff.method == "tree":
            return np.frombuffer(payload_codec.decompress(diff.payload), np.uint8)
        return np.frombuffer(diff.payload, dtype=np.uint8)

    index_bytes = record_index_bytes(directory)
    report = RecordRestoreReport(
        target_ckpt=upto,
        frames_total=count,
        frames_parsed=len(refs),
        record_bytes=record_bytes,
        record_bytes_read=int(sum(frame_sizes[t] for t in refs)) + index_bytes,
        index_bytes=index_bytes,
        used_index=True,
    )
    with telemetry.span(
        "restore.indexed_record",
        space=space,
        upto=upto,
        frames_total=count,
        frames_parsed=len(refs),
        bytes_read=report.record_bytes_read,
    ):
        out = materialize_index(index, payload_of, space=space, report=report)
    events.emit(
        events.RESTORE,
        path="indexed_record",
        target_ckpt=upto,
        chain_len=count,
        state_bytes=int(out.nbytes),
        payload_bytes=sum(report.payload_bytes_read.values()),
        sources=len(refs),
        record_bytes_read=report.record_bytes_read,
    )
    return out, report
