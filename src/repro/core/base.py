"""Common machinery for the four checkpointing methods of the evaluation.

Each engine owns its persistent device state (hash record, digest arrays),
produces one :class:`~repro.core.diff.CheckpointDiff` per call, and records
its kernel/transfer activity on a private
:class:`~repro.kokkos.DeviceSpace` ledger so the caller can price a single
checkpoint in isolation.

Checkpoints must all have the length declared at construction — the paper
checkpoints a fixed data structure (the GDV buffer), and the Merkle layout
plus fixed-duplicate semantics depend on stable chunk positions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from ..errors import ChunkingError
from ..kokkos.execution import DeviceSpace, LedgerView
from ..utils.timing import PhaseTimer
from .. import telemetry
from .chunking import BufferLike, ChunkSpec
from .diff import CheckpointDiff


class DedupEngine(ABC):
    """Base class: validates inputs, numbers checkpoints, meters transfers.

    Parameters
    ----------
    data_len:
        Checkpoint size in bytes (fixed for the engine's lifetime).
    chunk_size:
        De-duplication granularity in bytes.
    space:
        Device ledger to record on; a fresh :class:`DeviceSpace` by default
        so concurrent engines do not interleave records.
    fused:
        When True (the paper's design), each checkpoint's device work is
        recorded as one fused kernel; when False every pass/level is its
        own launch — the ablation knob for
        ``bench_ablation_fusion``.
    """

    #: Method name matching :data:`repro.core.diff.METHODS`.
    name: str = "?"

    def __init__(
        self,
        data_len: int,
        chunk_size: int,
        space: Optional[DeviceSpace] = None,
        fused: bool = True,
    ) -> None:
        self.spec = ChunkSpec(data_len, chunk_size)
        self.space = space if space is not None else DeviceSpace(0)
        self.fused = bool(fused)
        self.next_ckpt_id = 0
        self.timer = PhaseTimer()
        self._ckpt_cursor = self.space.ledger.cursor()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def checkpoint(self, data: BufferLike) -> CheckpointDiff:
        """De-duplicate one checkpoint and return its diff.

        The engine's ledger is cleared first, so after this returns it
        describes exactly this checkpoint's device activity including the
        single consolidated D2H transfer.
        """
        flat = self.spec.validate_buffer(data)
        self.space.ledger.clear()
        self._ckpt_cursor = self.space.ledger.cursor()
        ckpt_id = self.next_ckpt_id
        with self.phase(f"{self.name}.process", ckpt_id=ckpt_id):
            if self.fused:
                with self.space.fused(f"dedup.{self.name}"):
                    diff = self._process(flat, ckpt_id)
            else:
                diff = self._process(flat, ckpt_id)
        # One consolidated device-to-host copy of the serialized diff.
        self.space.transfer("D2H", diff.serialized_size, count=1)
        self.next_ckpt_id += 1
        return diff

    def phase(self, name: str, **attrs):
        """Dual-clock phase span for this engine's device work.

        Wall seconds land in :attr:`timer` (telemetry on or off), so the
        pre-existing ``PhaseTimer`` accounting is unchanged; with
        telemetry enabled the span also captures the device-work delta
        from :attr:`space` for the simulated-time track.
        """
        return telemetry.span(name, space=self.space, timer=self.timer, **attrs)

    def last_checkpoint_view(self) -> LedgerView:
        """Ledger records of the most recent :meth:`checkpoint` call.

        Cursor-scoped (see :meth:`~repro.kokkos.KernelLedger.since`), so
        pricing consumers cannot double-count records even if another
        consumer clears or re-reads the ledger concurrently.
        """
        return self.space.ledger.since(self._ckpt_cursor)

    @property
    def num_chunks(self) -> int:
        """Chunks per checkpoint under the configured granularity."""
        return self.spec.num_chunks

    def device_state_bytes(self) -> int:
        """Device memory held *between* checkpoints (hash record, trees)."""
        return 0

    # ------------------------------------------------------------------
    # Subclass contract
    # ------------------------------------------------------------------
    @abstractmethod
    def _process(self, flat: np.ndarray, ckpt_id: int) -> CheckpointDiff:
        """Produce the diff for checkpoint *ckpt_id* over buffer *flat*."""

    def _check_first(self, ckpt_id: int) -> bool:
        """True for the initial checkpoint (no history to dedup against)."""
        return ckpt_id == 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} chunk={self.spec.chunk_size}B "
            f"n={self.spec.num_chunks} ckpts={self.next_ckpt_id}>"
        )


def require_same_length(expected: int, got: int) -> None:
    """Raise when a checkpoint buffer changes size mid-record."""
    if expected != got:
        raise ChunkingError(
            f"checkpoint length changed mid-record: expected {expected}, got {got}"
        )
