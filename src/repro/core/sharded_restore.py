"""Sharded restore plan: fan one checkpoint's gathers out across N GPUs.

The per-source batched gathers of :func:`~repro.core.provenance.
materialize_index` are independent per chunk — chunk *c*'s bytes come
from exactly one ``(src_ckpt[c], src_off[c])`` location regardless of
what any other chunk does.  So a fleet restart can split the chunk range
of the target checkpoint across N simulated GPUs the same way the
strong-scaling driver splits a graph's vertex range: contiguous balanced
ranges, one per rank, each rank gathering and uploading only its own
byte extent.

:class:`ShardedRestorePlan` owns that decomposition.  It is pure data
path + metering: per-rank gathers run on per-rank ``ExecutionSpace``\\ s
(so each rank's ledger can be priced under its own PCIe contention by
``KernelCostModel.price_fleet_restore``), optionally split into W
windows whose uploads the restore-side streaming pipeline overlaps with
the shared storage read.  Output is bit-identical to the single-GPU
:class:`~repro.core.provenance.IndexedRestorer` by construction —
property-tested across every method × rank count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..errors import RestoreError
from ..utils.validation import positive_int
from .chunking import ChunkSpec
from .provenance import (
    RAW_INDEX_BYTES_PER_CHUNK,
    ProvenanceIndex,
    IndexedRestoreReport,
    materialize_index,
)


def partition_chunks(num_chunks: int, num_ranks: int) -> List[Tuple[int, int]]:
    """Contiguous balanced ``[lo, hi)`` chunk ranges, one per rank.

    The same linspace split ``partition_vertices`` uses for the scaling
    driver's graph decomposition, restated over chunk ids (core cannot
    import runtime, and the restore side partitions chunks, not
    vertices).
    """
    positive_int(num_chunks, "num_chunks")
    positive_int(num_ranks, "num_ranks")
    if num_ranks > num_chunks:
        raise RestoreError(
            f"cannot shard {num_chunks} chunks across {num_ranks} ranks"
        )
    bounds = np.linspace(0, num_chunks, num_ranks + 1).astype(np.int64)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(num_ranks)]


@dataclass(frozen=True)
class ShardSpec:
    """One rank's slice of the restore: chunk range + what it references."""

    rank: int
    chunk_lo: int
    chunk_hi: int
    #: Source checkpoints whose payloads this shard gathers from.
    sources: Tuple[int, ...]
    #: Payload bytes this shard gathers (zero chunks gather nothing).
    payload_bytes: int
    #: Byte extent of the chunk range — what the shard H2D-uploads.
    state_bytes: int

    @property
    def num_chunks(self) -> int:
        return self.chunk_hi - self.chunk_lo


@dataclass
class ShardReport:
    """What one rank's gathers actually touched during execution."""

    rank: int
    chunk_lo: int
    chunk_hi: int
    payload_bytes_read: Dict[int, int] = field(default_factory=dict)

    @property
    def sources(self) -> int:
        return len(self.payload_bytes_read)

    @property
    def total_payload_bytes_read(self) -> int:
        return sum(self.payload_bytes_read.values())

    @property
    def peak_payloads_held(self) -> int:
        """Distinct source payloads this rank's gathers needed resident.

        Bounded by the single-GPU restore's ``frames_referenced`` — a
        shard can only ever reference a subset of what the whole
        checkpoint references (asserted by the property tests).
        """
        return len(self.payload_bytes_read)


class ShardedRestorePlan:
    """Partition one checkpoint's provenance across N simulated GPUs.

    Built once per restore from the target's :class:`ProvenanceIndex`;
    :meth:`materialize` executes the per-rank gathers (window-major, so
    the metered ledger order matches the streaming pipeline's timeline)
    and :meth:`estimate_gather_seconds` gives the analytic worst-rank
    gather time the window auto-picker needs *before* execution.
    """

    def __init__(self, index: ProvenanceIndex, num_ranks: int) -> None:
        self.index = index
        spec = ChunkSpec(index.data_len, index.chunk_size)
        self._spec = spec
        cs = spec.chunk_size
        shards: List[ShardSpec] = []
        for rank, (lo, hi) in enumerate(
            partition_chunks(spec.num_chunks, num_ranks)
        ):
            sub = index.src_ckpt[lo:hi]
            sources = np.unique(sub)
            sources = sources[sources >= 0]
            nonzero = int(np.count_nonzero(sub >= 0))
            payload = nonzero * cs
            # The tail chunk is shorter than cs; correct if this shard
            # holds it and it gathers.
            if (
                index.data_len % cs
                and hi == spec.num_chunks
                and sub.size
                and int(sub[-1]) >= 0
            ):
                payload -= cs - spec.tail_len
            state = min(hi * cs, index.data_len) - lo * cs
            shards.append(
                ShardSpec(
                    rank=rank,
                    chunk_lo=lo,
                    chunk_hi=hi,
                    sources=tuple(int(t) for t in sources),
                    payload_bytes=payload,
                    state_bytes=state,
                )
            )
        self.shards = shards

    @property
    def num_ranks(self) -> int:
        return len(self.shards)

    @property
    def total_payload_bytes(self) -> int:
        return sum(s.payload_bytes for s in self.shards)

    def window_ranges(self, shard: ShardSpec, windows: int) -> List[Tuple[int, int]]:
        """Split one shard's chunk range into W contiguous windows."""
        positive_int(windows, "windows")
        bounds = np.linspace(
            shard.chunk_lo, shard.chunk_hi, windows + 1
        ).astype(np.int64)
        return [(int(bounds[i]), int(bounds[i + 1])) for i in range(windows)]

    def materialize(
        self,
        payload_of: Callable[[int], np.ndarray],
        out: Optional[np.ndarray] = None,
        spaces: Optional[Sequence] = None,
        windows: int = 1,
        reports: Optional[Sequence[ShardReport]] = None,
    ) -> np.ndarray:
        """Execute every shard's gathers into one shared output buffer.

        *spaces* supplies one ``ExecutionSpace`` per rank (``None``
        meters nothing); each (rank, window) gather runs under a
        ``restore.shard.gather`` telemetry span against that rank's
        space, and each window's range uploads as its own H2D copy —
        the per-window DMA setup cost is real, which is what makes the
        window-count choice a genuine trade-off.
        """
        positive_int(windows, "windows")
        index = self.index
        if spaces is not None and len(spaces) < self.num_ranks:
            raise RestoreError(
                f"{len(spaces)} execution spaces for {self.num_ranks} ranks"
            )
        if out is None:
            out = np.zeros(index.data_len, dtype=np.uint8)
        else:
            out[:] = 0
        for w in range(windows):
            for shard in self.shards:
                lo, hi = self.window_ranges(shard, windows)[w]
                if lo == hi:
                    continue
                space = spaces[shard.rank] if spaces is not None else None
                scratch = IndexedRestoreReport(
                    target_ckpt=index.ckpt_id,
                    data_len=index.data_len,
                    chain_len=index.ckpt_id + 1,
                )
                with telemetry.span(
                    "restore.shard.gather",
                    space=space,
                    rank=shard.rank,
                    window=w,
                    chunk_lo=lo,
                    chunk_hi=hi,
                ):
                    materialize_index(
                        index,
                        payload_of,
                        out=out,
                        space=space,
                        report=scratch,
                        chunk_lo=lo,
                        chunk_hi=hi,
                        zero=False,
                    )
                if reports is not None:
                    held = reports[shard.rank].payload_bytes_read
                    for t, nbytes in scratch.payload_bytes_read.items():
                        held[t] = held.get(t, 0) + nbytes
        return out

    def estimate_gather_seconds(
        self, device, contention: Sequence[float]
    ) -> float:
        """Analytic worst-rank gather + H2D seconds (pre-execution).

        Mirrors the :class:`~repro.gpusim.perfmodel.KernelCostModel`
        linear terms for what :meth:`materialize` will meter with W=1:
        one gather launch per source payload (reading payload bytes +
        the shard's index slice, writing payload bytes) and one H2D of
        the shard extent under that rank's PCIe contention.  The window
        auto-picker needs this *before* any ledger exists.
        """
        if len(contention) < self.num_ranks:
            raise RestoreError(
                f"{len(contention)} contention factors for "
                f"{self.num_ranks} ranks"
            )
        worst = 0.0
        for shard in self.shards:
            launches = len(shard.sources)
            stream_bytes = (
                2 * shard.payload_bytes
                + launches * shard.num_chunks * RAW_INDEX_BYTES_PER_CHUNK
            )
            seconds = (
                launches * device.kernel_launch_latency
                + stream_bytes / device.effective_stream_bandwidth
                + device.pcie_latency
                + shard.state_bytes
                / (device.pcie_bandwidth / contention[shard.rank])
            )
            worst = max(worst, seconds)
        return worst

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ShardedRestorePlan ckpt={self.index.ckpt_id} "
            f"ranks={self.num_ranks} chunks={self._spec.num_chunks}>"
        )
