"""Selective checkpoint reconstruction — the paper's §5 future-work item
("scalable reconstruction techniques that efficiently collect scattered
compact regions from multiple previous checkpoints").

The baseline :class:`~repro.core.restore.Restorer` materialises every
checkpoint 0..k to produce checkpoint k — simple, but its I/O volume is
the *sum of the whole record*.  The selective restorer instead resolves
byte intervals backwards through the diff chain:

* a byte written by a first-occurrence region of version *t* is read
  straight from that diff's payload (terminal);
* a byte inside a shifted-duplicate region follows the region's
  ``(ref_node, ref_ckpt)`` pointer — shifted references always target
  first-occurrence content (Algorithm 1 only inserts record entries for
  first occurrences), so each hop either terminates in a payload or
  translates the interval to version ``t`` itself where first regions
  cover it;
* any byte not covered by version *t*'s diff is a fixed duplicate and
  resolves at version *t-1*.

The result is byte-identical to the chain restorer (property-tested) but
touches only the payload bytes that actually contribute to checkpoint k —
the :class:`RestorePlan` reports exactly how many bytes were read from
which diff, the metric the paper's future-work is about.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import RestoreError
from .chunking import ChunkSpec
from .diff import CheckpointDiff
from .merkle import TreeLayout
from .serialize import unpack_bitmap

#: Region kinds in the per-diff interval index.
_FIRST = 0
_SHIFT = 1


@dataclass
class _DiffIndex:
    """Byte-interval index of one diff: sorted, non-overlapping regions."""

    starts: np.ndarray          # region byte start, sorted ascending
    ends: np.ndarray            # region byte end (exclusive)
    kinds: np.ndarray           # _FIRST or _SHIFT
    payload_offsets: np.ndarray  # into diff.payload, valid for _FIRST rows
    src_starts: np.ndarray      # absolute source byte start, _SHIFT rows
    ref_ckpts: np.ndarray       # source checkpoint id, _SHIFT rows


@dataclass
class RestorePlan:
    """Accounting of one selective reconstruction."""

    target_ckpt: int
    data_len: int
    #: diff id -> payload bytes actually read from it.
    payload_bytes_read: Dict[int, int] = field(default_factory=dict)
    #: number of contiguous payload segments gathered.
    segments: int = 0
    #: deepest reference chain followed.
    max_depth: int = 0

    @property
    def total_bytes_read(self) -> int:
        """Total payload bytes gathered across all diffs."""
        return sum(self.payload_bytes_read.values())

    @property
    def diffs_touched(self) -> int:
        """How many checkpoints contributed at least one byte."""
        return len(self.payload_bytes_read)


class SelectiveRestorer:
    """Reconstructs one checkpoint by backward interval resolution."""

    def __init__(self, payload_codec=None) -> None:
        self.payload_codec = payload_codec
        self._layouts: Dict[int, TreeLayout] = {}

    # ------------------------------------------------------------------
    def restore(
        self, diffs: Sequence[CheckpointDiff], upto: Optional[int] = None
    ) -> Tuple[np.ndarray, RestorePlan]:
        """Materialise checkpoint *upto* (default latest).

        Returns ``(buffer, plan)``.
        """
        if len(diffs) == 0:
            raise RestoreError("cannot restore from an empty diff chain")
        if upto is None:
            upto = len(diffs) - 1
        if not 0 <= upto < len(diffs):
            raise RestoreError(f"checkpoint {upto} outside chain of {len(diffs)}")
        for position, diff in enumerate(diffs[: upto + 1]):
            if diff.ckpt_id != position:
                raise RestoreError(
                    f"diff chain out of order at position {position}"
                )

        data_len = diffs[0].data_len
        out = np.zeros(data_len, dtype=np.uint8)
        plan = RestorePlan(target_ckpt=upto, data_len=data_len)
        indexes: Dict[int, _DiffIndex] = {}
        payloads: Dict[int, np.ndarray] = {}

        def payload_of(t: int) -> np.ndarray:
            cached = payloads.get(t)
            if cached is None:
                raw = diffs[t].payload
                if self.payload_codec is not None and diffs[t].method == "tree":
                    raw = self.payload_codec.decompress(raw)
                cached = np.frombuffer(raw, dtype=np.uint8)
                payloads[t] = cached
            return cached

        def index_of(t: int) -> _DiffIndex:
            cached = indexes.get(t)
            if cached is None:
                cached = self._build_index(diffs[t])
                indexes[t] = cached
            return cached

        # Work stack of (version, src_lo, src_hi, dst_lo, depth).
        max_depth_allowed = len(diffs) + 64  # cycles only exist in corrupt chains
        stack: List[Tuple[int, int, int, int, int]] = [(upto, 0, data_len, 0, 0)]
        while stack:
            version, lo, hi, dst, depth = stack.pop()
            if lo >= hi:
                continue
            if depth > max_depth_allowed:
                raise RestoreError(
                    "reference chain too deep — the diff chain is corrupt "
                    "(cyclic shifted-duplicate references)"
                )
            if version < 0:
                # Below checkpoint 0 the buffer is implicitly zero (the
                # chain restorer starts checkpoint 0 from zeros as well).
                continue
            plan.max_depth = max(plan.max_depth, depth)
            index = index_of(version)

            cursor = lo
            while cursor < hi:
                pos = bisect_right(index.starts, cursor) - 1
                region = -1
                if pos >= 0 and index.ends[pos] > cursor:
                    region = pos
                if region < 0:
                    # Fixed gap: up to the next region start (or hi).
                    nxt = bisect_right(index.starts, cursor)
                    gap_end = hi if nxt >= len(index.starts) else min(
                        hi, int(index.starts[nxt])
                    )
                    stack.append(
                        (version - 1, cursor, gap_end, dst + (cursor - lo), depth)
                    )
                    cursor = gap_end
                    continue

                seg_end = min(hi, int(index.ends[region]))
                length = seg_end - cursor
                if index.kinds[region] == _FIRST:
                    offset = int(index.payload_offsets[region]) + (
                        cursor - int(index.starts[region])
                    )
                    payload = payload_of(version)
                    if offset + length > payload.shape[0]:
                        raise RestoreError(
                            f"payload of checkpoint {version} too short"
                        )
                    d0 = dst + (cursor - lo)
                    out[d0 : d0 + length] = payload[offset : offset + length]
                    plan.payload_bytes_read[version] = (
                        plan.payload_bytes_read.get(version, 0) + length
                    )
                    plan.segments += 1
                else:
                    src = int(index.src_starts[region]) + (
                        cursor - int(index.starts[region])
                    )
                    ref = int(index.ref_ckpts[region])
                    if ref > version:
                        raise RestoreError(
                            f"forward reference {version}→{ref} in diff chain"
                        )
                    stack.append(
                        (ref, src, src + length, dst + (cursor - lo), depth + 1)
                    )
                cursor = seg_end
        return out, plan

    # ------------------------------------------------------------------
    def _layout_for(self, num_chunks: int) -> TreeLayout:
        layout = self._layouts.get(num_chunks)
        if layout is None:
            layout = TreeLayout(num_chunks)
            self._layouts[num_chunks] = layout
        return layout

    def _build_index(self, diff: CheckpointDiff) -> _DiffIndex:
        spec = ChunkSpec(diff.data_len, diff.chunk_size)
        starts: List[int] = []
        ends: List[int] = []
        kinds: List[int] = []
        payload_offsets: List[int] = []
        src_starts: List[int] = []
        ref_ckpts: List[int] = []

        if diff.method == "full":
            starts, ends = [0], [diff.data_len]
            kinds, payload_offsets = [_FIRST], [0]
            src_starts, ref_ckpts = [0], [0]
        elif diff.method == "basic":
            changed = unpack_bitmap(diff.bitmap, spec.num_chunks)
            offset = 0
            run_start = None
            for chunk in range(spec.num_chunks + 1):
                active = chunk < spec.num_chunks and changed[chunk]
                if active and run_start is None:
                    run_start = chunk
                elif not active and run_start is not None:
                    b0, _ = spec.chunk_bounds(run_start)
                    _, b1 = spec.chunk_bounds(chunk - 1)
                    starts.append(b0)
                    ends.append(b1)
                    kinds.append(_FIRST)
                    payload_offsets.append(offset)
                    src_starts.append(0)
                    ref_ckpts.append(0)
                    offset += b1 - b0
                    run_start = None
        else:
            layout = (
                self._layout_for(spec.num_chunks) if diff.method == "tree" else None
            )

            def bounds(node: int) -> Tuple[int, int]:
                if diff.method == "tree":
                    return spec.range_bounds(
                        int(layout.leaf_start[node]), int(layout.leaf_count[node])
                    )
                return spec.chunk_bounds(node)

            offset = 0
            for node in diff.first_ids:
                b0, b1 = bounds(int(node))
                starts.append(b0)
                ends.append(b1)
                kinds.append(_FIRST)
                payload_offsets.append(offset)
                src_starts.append(0)
                ref_ckpts.append(0)
                offset += b1 - b0
            for i in range(diff.num_shift):
                b0, b1 = bounds(int(diff.shift_ids[i]))
                s0, s1 = bounds(int(diff.shift_ref_ids[i]))
                if s1 - s0 != b1 - b0:
                    raise RestoreError(
                        f"shifted region {int(diff.shift_ids[i])} length mismatch"
                    )
                starts.append(b0)
                ends.append(b1)
                kinds.append(_SHIFT)
                payload_offsets.append(0)
                src_starts.append(s0)
                ref_ckpts.append(int(diff.shift_ref_ckpts[i]))

        order = np.argsort(np.asarray(starts, dtype=np.int64), kind="stable")
        return _DiffIndex(
            starts=np.asarray(starts, dtype=np.int64)[order],
            ends=np.asarray(ends, dtype=np.int64)[order],
            kinds=np.asarray(kinds, dtype=np.int64)[order],
            payload_offsets=np.asarray(payload_offsets, dtype=np.int64)[order],
            src_starts=np.asarray(src_starts, dtype=np.int64)[order],
            ref_ckpts=np.asarray(ref_ckpts, dtype=np.int64)[order],
        )


def selective_restore(
    diffs: Sequence[CheckpointDiff],
    upto: Optional[int] = None,
    payload_codec=None,
) -> np.ndarray:
    """Convenience wrapper returning just the reconstructed buffer."""
    buffer, _ = SelectiveRestorer(payload_codec=payload_codec).restore(diffs, upto)
    return buffer
