"""``Full`` — the baseline that always ships the entire checkpoint.

No device compute beyond handing the buffer to the DMA engine; its cost is
pure PCIe transfer, which is exactly how the paper measures the Full
method's "throughput" (GPU→host flush throughput, §3.2).
"""

from __future__ import annotations

import numpy as np

from .base import DedupEngine
from .diff import CheckpointDiff


class FullCheckpoint(DedupEngine):
    """Stores every checkpoint in full."""

    name = "full"

    def _process(self, flat: np.ndarray, ckpt_id: int) -> CheckpointDiff:
        return CheckpointDiff(
            method=self.name,
            ckpt_id=ckpt_id,
            data_len=self.spec.data_len,
            chunk_size=self.spec.chunk_size,
            payload=flat.tobytes(),
        )
