"""The paper's primary contribution: GPU-accelerated incremental
checkpointing by Merkle-tree de-duplication, plus the Full/Basic/List
baselines it is evaluated against, the diff wire format, and restore.
"""

from .analysis import (
    DiffComposition,
    analyze_diff,
    analyze_record,
    composition_report,
    verify_chain,
)
from .base import DedupEngine
from .checkpointer import ENGINES, IncrementalCheckpointer
from .chunking import ChunkSpec, as_uint8, min_recommended_chunk_size
from .dedup_basic import BasicDedup
from .dedup_full import FullCheckpoint
from .dedup_list import ListDedup
from .dedup_tree import TreeDedup
from .diff import (
    DIGEST_BYTES,
    FIRST_ENTRY_BYTES,
    METHODS,
    SHIFT_ENTRY_BYTES,
    CheckpointDiff,
    encode_legacy_v1,
)
from .labels import (
    FIRST_OCUR,
    FIXED_DUPL,
    MIXED,
    SHIFT_DUPL,
    UNLABELED,
    count_labels,
    label_name,
)
from .merkle import MerkleTree, TreeLayout
from .provenance import (
    IndexedRestorer,
    IndexedRestoreReport,
    ProvenanceBuilder,
    ProvenanceIndex,
    ProvenanceTable,
    RecordRestoreReport,
    indexed_restore_latest,
    materialize_index,
    restore_record_indexed,
)
from .record import CheckpointRecord, CheckpointStats, merge_records
from .restore import Restorer, restore_latest, scrub_chain
from .retention import (
    payload_dependencies,
    rebase_record,
    rebase_stored_record,
    required_payloads,
)
from .selective import RestorePlan, SelectiveRestorer, selective_restore
from .sharded_restore import (
    ShardedRestorePlan,
    ShardReport,
    ShardSpec,
    partition_chunks,
)
from .store import (
    AppendReceipt,
    CheckpointStatus,
    RecordVerification,
    RecordWriter,
    load_provenance,
    load_record,
    load_record_frames,
    record_frame_sizes,
    record_index_bytes,
    record_manifest,
    save_record,
    verify_record,
)

__all__ = [
    "DiffComposition",
    "analyze_diff",
    "analyze_record",
    "composition_report",
    "verify_chain",
    "DedupEngine",
    "ENGINES",
    "IncrementalCheckpointer",
    "ChunkSpec",
    "as_uint8",
    "min_recommended_chunk_size",
    "BasicDedup",
    "FullCheckpoint",
    "ListDedup",
    "TreeDedup",
    "FIRST_ENTRY_BYTES",
    "METHODS",
    "SHIFT_ENTRY_BYTES",
    "DIGEST_BYTES",
    "CheckpointDiff",
    "encode_legacy_v1",
    "AppendReceipt",
    "CheckpointStatus",
    "RecordVerification",
    "RecordWriter",
    "load_provenance",
    "load_record",
    "load_record_frames",
    "record_frame_sizes",
    "record_index_bytes",
    "record_manifest",
    "save_record",
    "verify_record",
    "FIRST_OCUR",
    "FIXED_DUPL",
    "MIXED",
    "SHIFT_DUPL",
    "UNLABELED",
    "count_labels",
    "label_name",
    "MerkleTree",
    "TreeLayout",
    "CheckpointRecord",
    "CheckpointStats",
    "merge_records",
    "Restorer",
    "restore_latest",
    "scrub_chain",
    "IndexedRestorer",
    "IndexedRestoreReport",
    "ProvenanceBuilder",
    "ProvenanceIndex",
    "ProvenanceTable",
    "RecordRestoreReport",
    "indexed_restore_latest",
    "materialize_index",
    "restore_record_indexed",
    "payload_dependencies",
    "rebase_record",
    "rebase_stored_record",
    "required_payloads",
    "RestorePlan",
    "SelectiveRestorer",
    "selective_restore",
    "ShardedRestorePlan",
    "ShardReport",
    "ShardSpec",
    "partition_chunks",
]
