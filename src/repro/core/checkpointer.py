"""High-level public API: :class:`IncrementalCheckpointer`.

Wires an engine (Full/Basic/List/Tree), a simulated device, and a
checkpoint record together so applications only do::

    ckpt = IncrementalCheckpointer(data_len=buf.nbytes, chunk_size=128)
    ckpt.checkpoint(buf)          # each iteration
    ...
    restored = ckpt.restore(5)    # any checkpoint, any time

Every :meth:`checkpoint` call runs the real de-duplication data path,
prices the recorded kernels/transfers with the device cost model, and
appends a :class:`~repro.core.record.CheckpointStats` to the record.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Type

import numpy as np

from ..errors import ConfigurationError
from ..gpusim.device import DeviceSpec, a100
from ..gpusim.perfmodel import KernelCostModel
from ..utils.validation import positive_float
from .. import telemetry
from .base import DedupEngine
from .chunking import BufferLike
from .dedup_basic import BasicDedup
from .dedup_full import FullCheckpoint
from .dedup_list import ListDedup
from .dedup_tree import TreeDedup
from .record import CheckpointRecord, CheckpointStats

#: Method name → engine class (also the method axis of every bench).
ENGINES: Dict[str, Type[DedupEngine]] = {
    "full": FullCheckpoint,
    "basic": BasicDedup,
    "list": ListDedup,
    "tree": TreeDedup,
}


class IncrementalCheckpointer:
    """One process's checkpointing pipeline on one simulated GPU.

    Parameters
    ----------
    data_len:
        Fixed checkpoint size in bytes.
    chunk_size:
        De-duplication granularity (the Fig. 4 knob).
    method:
        ``"tree"`` (the paper's method), ``"list"``, ``"basic"`` or
        ``"full"``.
    device:
        Simulated GPU; defaults to an A100 as in the paper's testbeds.
    pcie_contention:
        ≥1 slowdown on D2H transfers (set by the scaling driver when
        several simulated GPUs share a node).
    fused:
        Record device work as fused kernels (paper default) or one launch
        per pass (ablation).
    payload_codec:
        Optional hybrid compression of the tree payload (paper §5).
    """

    def __init__(
        self,
        data_len: int,
        chunk_size: int,
        method: str = "tree",
        device: Optional[DeviceSpec] = None,
        pcie_contention: float = 1.0,
        fused: bool = True,
        payload_codec=None,
    ) -> None:
        if method not in ENGINES:
            raise ConfigurationError(
                f"unknown method {method!r}; choose from {sorted(ENGINES)}"
            )
        positive_float(pcie_contention, "pcie_contention")
        self.method = method
        self.device = device if device is not None else a100()
        kwargs = {"fused": fused}
        if method == "tree" and payload_codec is not None:
            kwargs["payload_codec"] = payload_codec
        elif payload_codec is not None:
            raise ConfigurationError("payload_codec is only supported by 'tree'")
        self.engine: DedupEngine = ENGINES[method](data_len, chunk_size, **kwargs)
        self.cost_model = KernelCostModel(self.device, pcie_contention=pcie_contention)
        self.record = CheckpointRecord(method)
        self.payload_codec = payload_codec

    # ------------------------------------------------------------------
    def checkpoint(self, data: BufferLike) -> CheckpointStats:
        """Capture one checkpoint; returns its measurements."""
        wall_start = time.perf_counter()
        with telemetry.span(
            "checkpoint",
            space=self.engine.space,
            method=self.method,
            ckpt_id=self.engine.next_ckpt_id,
        ) as span:
            diff = self.engine.checkpoint(data)
            span.set(
                bytes=diff.serialized_size,
                chunks=self.engine.num_chunks,
                num_first=diff.num_first,
                num_shift=diff.num_shift,
            )
        wall = time.perf_counter() - wall_start
        # Price the cursor-scoped view of exactly this checkpoint's
        # records — never the raw ledger, which other consumers may read
        # or clear independently.
        cost = self.cost_model.price(self.engine.last_checkpoint_view())
        stats = CheckpointStats(
            ckpt_id=diff.ckpt_id,
            data_len=diff.data_len,
            stored_bytes=diff.serialized_size,
            metadata_bytes=diff.metadata_bytes,
            payload_bytes=diff.payload_bytes,
            num_first=diff.num_first,
            num_shift=diff.num_shift,
            cost=cost,
            wall_seconds=wall,
        )
        self.record.append(diff, stats)
        return stats

    def restore(self, upto: Optional[int] = None) -> np.ndarray:
        """Reconstruct checkpoint *upto* (default latest) from the record."""
        return self.record.restore(upto, payload_codec=self.payload_codec)

    # ------------------------------------------------------------------
    @property
    def num_checkpoints(self) -> int:
        """Checkpoints captured so far."""
        return len(self.record)

    def dedup_ratio(self, skip_first: bool = False) -> float:
        """Record-level de-duplication ratio (§3.2)."""
        return self.record.dedup_ratio(skip_first)

    def aggregate_throughput(self, skip_first: bool = False) -> float:
        """Record-level de-duplication throughput (§3.2)."""
        return self.record.aggregate_throughput(skip_first)

    def device_state_bytes(self) -> int:
        """Persistent device memory the engine holds between checkpoints."""
        return self.engine.device_state_bytes()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<IncrementalCheckpointer {self.method} "
            f"chunk={self.engine.spec.chunk_size}B ckpts={self.num_checkpoints}>"
        )
