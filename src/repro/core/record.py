"""Checkpoint record: the lineage of diffs plus per-checkpoint statistics.

The paper's metrics (§3.2) are defined over the *record*, not individual
checkpoints: the de-duplication ratio is total full size over total stored
size, and the frequency experiments aggregate over all captured
checkpoints excluding the initial full one.  This module owns those
aggregations so every bench computes them the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..errors import RestoreError
from ..gpusim.perfmodel import CostBreakdown
from ..utils.units import format_bytes, format_ratio
from .diff import CheckpointDiff
from .restore import Restorer


@dataclass
class CheckpointStats:
    """Everything measured about one checkpoint."""

    ckpt_id: int
    data_len: int
    stored_bytes: int
    metadata_bytes: int
    payload_bytes: int
    num_first: int
    num_shift: int
    #: Simulated GPU cost (None when the engine ran unmetered).
    cost: Optional[CostBreakdown] = None
    #: Wall-clock seconds of the Python data path.
    wall_seconds: float = 0.0

    @property
    def simulated_seconds(self) -> float:
        """End-to-end simulated time (0 when unmetered)."""
        return self.cost.total_seconds if self.cost is not None else 0.0

    @property
    def throughput(self) -> float:
        """Paper metric: original bytes / simulated create+copy seconds."""
        secs = self.simulated_seconds
        return self.data_len / secs if secs > 0 else float("inf")

    @property
    def dedup_ratio(self) -> float:
        """Single-checkpoint ratio: full size over stored size."""
        return self.data_len / self.stored_bytes if self.stored_bytes else float("inf")


class CheckpointRecord:
    """Ordered collection of diffs + stats for one process's record."""

    def __init__(self, method: str) -> None:
        self.method = method
        self.diffs: List[CheckpointDiff] = []
        self.stats: List[CheckpointStats] = []

    def append(self, diff: CheckpointDiff, stats: CheckpointStats) -> None:
        """Add one checkpoint's diff and measurements."""
        if diff.ckpt_id != len(self.diffs):
            raise RestoreError(
                f"record expects checkpoint {len(self.diffs)}, got {diff.ckpt_id}"
            )
        self.diffs.append(diff)
        self.stats.append(stats)

    def __len__(self) -> int:
        return len(self.diffs)

    # ------------------------------------------------------------------
    # Aggregations (paper §3.2 definitions)
    # ------------------------------------------------------------------
    def total_full_bytes(self, skip_first: bool = False) -> int:
        """What storing every checkpoint in full would cost."""
        stats = self.stats[1:] if skip_first else self.stats
        return sum(s.data_len for s in stats)

    def total_stored_bytes(self, skip_first: bool = False) -> int:
        """What this record actually stores."""
        stats = self.stats[1:] if skip_first else self.stats
        return sum(s.stored_bytes for s in stats)

    def dedup_ratio(self, skip_first: bool = False) -> float:
        """Full bytes over stored bytes across the record.

        ``skip_first=True`` matches the frequency-scenario aggregation,
        which excludes the initial full checkpoint (§3.2).
        """
        stored = self.total_stored_bytes(skip_first)
        if stored == 0:
            return float("inf")
        return self.total_full_bytes(skip_first) / stored

    def total_metadata_bytes(self, skip_first: bool = False) -> int:
        """Total metadata across the record."""
        stats = self.stats[1:] if skip_first else self.stats
        return sum(s.metadata_bytes for s in stats)

    def aggregate_throughput(self, skip_first: bool = False) -> float:
        """Total original bytes over total simulated seconds."""
        stats = self.stats[1:] if skip_first else self.stats
        seconds = sum(s.simulated_seconds for s in stats)
        payload = sum(s.data_len for s in stats)
        return payload / seconds if seconds > 0 else float("inf")

    def restore(self, upto: Optional[int] = None, payload_codec=None) -> np.ndarray:
        """Reconstruct a checkpoint from the record."""
        return Restorer(payload_codec=payload_codec).restore(self.diffs, upto)

    def restore_all(self, payload_codec=None) -> List[np.ndarray]:
        """Reconstruct every checkpoint."""
        return Restorer(payload_codec=payload_codec).restore_all(self.diffs)

    def summary(self) -> str:
        """One-line human-readable record summary."""
        return (
            f"{self.method}: {len(self)} ckpts, "
            f"{format_bytes(self.total_stored_bytes())} stored of "
            f"{format_bytes(self.total_full_bytes())} "
            f"({format_ratio(self.dedup_ratio())})"
        )


def merge_records(records: Sequence[CheckpointRecord]) -> dict:
    """Cluster-level aggregation across per-process records (Fig. 6).

    Returns totals: full bytes, stored bytes, ratio, and the maximum
    per-process simulated time per checkpoint index (the paper measures
    scaling throughput as total data over the *slowest* process).
    """
    if not records:
        raise RestoreError("merge_records needs at least one record")
    num_ckpts = min(len(r) for r in records)
    total_full = sum(r.total_full_bytes() for r in records)
    total_stored = sum(r.total_stored_bytes() for r in records)
    max_seconds = 0.0
    for i in range(num_ckpts):
        max_seconds += max(r.stats[i].simulated_seconds for r in records)
    return {
        "num_processes": len(records),
        "num_checkpoints": num_ckpts,
        "total_full_bytes": total_full,
        "total_stored_bytes": total_stored,
        "dedup_ratio": total_full / total_stored if total_stored else float("inf"),
        "aggregate_throughput": total_full / max_seconds if max_seconds else float("inf"),
    }
