"""Checkpoint reconstruction from diff chains.

Restoring checkpoint *k* follows §2.2: start from the reconstruction of
checkpoint *k-1* (fixed duplicates are simply the bytes that are never
overwritten), write the first-occurrence payload into place, then resolve
shifted duplicates by copying from the referenced checkpoint — which may
be an earlier checkpoint or checkpoint *k* itself (a shifted duplicate of
a first occurrence earlier in the same buffer).

Shifted-duplicate references always point at content that was stored as a
first occurrence, so after phase one of the current checkpoint every
reference target is available in some reconstructed buffer.  The restorer
keeps all reconstructed checkpoints of the chain in memory; callers that
only need the final state can use :func:`restore_latest` which trims the
history to the window actually referenced.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import IntegrityError, ReproError, RestoreError
from .chunking import ChunkSpec
from .diff import CheckpointDiff
from .merkle import TreeLayout
from .serialize import unpack_bitmap


class Restorer:
    """Reconstructs full checkpoints from an ordered diff chain.

    Parameters
    ----------
    payload_codec:
        Codec whose ``decompress`` undoes the engine-side payload
        compression (the hybrid mode of :class:`~repro.core.dedup_tree.
        TreeDedup`); ``None`` for raw payloads.
    scrub:
        When true, every diff is structurally validated before it is
        applied (frame digest where present, region bounds, payload
        lengths, reference validity), and any damage raises a structured
        :class:`~repro.errors.IntegrityError` naming the first bad
        checkpoint — instead of silently producing wrong bytes or
        surfacing an unattributed :class:`RestoreError` mid-apply.
    """

    def __init__(self, payload_codec=None, scrub: bool = False) -> None:
        self.payload_codec = payload_codec
        self.scrub = scrub
        self._layouts: Dict[int, TreeLayout] = {}

    # ------------------------------------------------------------------
    def restore_all(self, diffs: Sequence[CheckpointDiff]) -> List[np.ndarray]:
        """Reconstruct every checkpoint in the chain, in order."""
        if self.scrub:
            self._scrub_chain(diffs)
        history: List[np.ndarray] = []
        for position, diff in enumerate(diffs):
            if diff.ckpt_id != position:
                raise RestoreError(
                    f"diff chain out of order: position {position} holds "
                    f"checkpoint {diff.ckpt_id}"
                )
            if not self.scrub:
                history.append(self._restore_one(diff, history))
                continue
            try:
                history.append(self._restore_one(diff, history))
            except IntegrityError:
                raise
            except ReproError as exc:
                raise IntegrityError(
                    f"checkpoint {position}: diff failed to apply ({exc})",
                    ckpt_id=position,
                ) from exc
        return history

    def _scrub_chain(self, diffs: Sequence[CheckpointDiff]) -> None:
        """Pre-apply validation; raises on the first bad checkpoint."""
        from .analysis import verify_chain  # local import: avoids a cycle

        problems = verify_chain(diffs)
        if self.payload_codec is not None:
            # Compressed payloads legitimately differ from the raw
            # lengths verify_chain predicts (see its docstring).
            problems = [p for p in problems if "payload" not in p]
        if problems:
            first = problems[0]
            ckpt_id: Optional[int] = None
            if first.startswith("ckpt "):
                try:
                    ckpt_id = int(first.split()[1].rstrip(":"))
                except ValueError:
                    ckpt_id = None
            raise IntegrityError(
                f"scrub failed: {first}"
                + (f" (+{len(problems) - 1} more)" if len(problems) > 1 else ""),
                ckpt_id=ckpt_id,
            )

    def restore(
        self, diffs: Sequence[CheckpointDiff], upto: Optional[int] = None
    ) -> np.ndarray:
        """Reconstruct checkpoint *upto* (default: the last one)."""
        if len(diffs) == 0:
            raise RestoreError("cannot restore from an empty diff chain")
        if upto is None:
            upto = len(diffs) - 1
        if not 0 <= upto < len(diffs):
            raise RestoreError(f"checkpoint {upto} outside chain of {len(diffs)}")
        return self.restore_all(diffs[: upto + 1])[upto]

    # ------------------------------------------------------------------
    def _restore_one(
        self, diff: CheckpointDiff, history: List[np.ndarray]
    ) -> np.ndarray:
        spec = ChunkSpec(diff.data_len, diff.chunk_size)
        if diff.ckpt_id == 0:
            data = np.zeros(diff.data_len, dtype=np.uint8)
        else:
            prev = history[diff.ckpt_id - 1]
            if prev.shape[0] != diff.data_len:
                raise RestoreError(
                    f"checkpoint length changed mid-chain at {diff.ckpt_id}"
                )
            data = prev.copy()

        handler = {
            "full": self._apply_full,
            "basic": self._apply_basic,
            "list": self._apply_list,
            "tree": self._apply_tree,
        }[diff.method]
        handler(diff, spec, data, history)
        return data

    def _payload(self, diff: CheckpointDiff) -> bytes:
        if self.payload_codec is not None and diff.method == "tree":
            return self.payload_codec.decompress(diff.payload)
        return diff.payload

    # ------------------------------------------------------------------
    def _apply_full(
        self,
        diff: CheckpointDiff,
        spec: ChunkSpec,
        data: np.ndarray,
        history: List[np.ndarray],
    ) -> None:
        payload = self._payload(diff)
        if len(payload) != diff.data_len:
            raise RestoreError(
                f"full checkpoint payload is {len(payload)} bytes, "
                f"expected {diff.data_len}"
            )
        data[:] = np.frombuffer(payload, dtype=np.uint8)

    def _apply_basic(
        self,
        diff: CheckpointDiff,
        spec: ChunkSpec,
        data: np.ndarray,
        history: List[np.ndarray],
    ) -> None:
        changed = unpack_bitmap(diff.bitmap, spec.num_chunks)
        payload = np.frombuffer(self._payload(diff), dtype=np.uint8)
        offset = 0
        for chunk in np.nonzero(changed)[0]:
            start, end = spec.chunk_bounds(int(chunk))
            length = end - start
            if offset + length > payload.shape[0]:
                raise RestoreError("basic payload shorter than bitmap demands")
            data[start:end] = payload[offset : offset + length]
            offset += length
        if offset != payload.shape[0]:
            raise RestoreError(
                f"basic payload has {payload.shape[0] - offset} trailing bytes"
            )

    def _apply_list(
        self,
        diff: CheckpointDiff,
        spec: ChunkSpec,
        data: np.ndarray,
        history: List[np.ndarray],
    ) -> None:
        payload = np.frombuffer(self._payload(diff), dtype=np.uint8)
        offset = 0
        for chunk in diff.first_ids:
            start, end = spec.chunk_bounds(int(chunk))
            length = end - start
            data[start:end] = payload[offset : offset + length]
            offset += length
        if offset != payload.shape[0]:
            raise RestoreError("list payload length mismatch")

        for i in range(diff.num_shift):
            dst0, dst1 = spec.chunk_bounds(int(diff.shift_ids[i]))
            src0, src1 = spec.chunk_bounds(int(diff.shift_ref_ids[i]))
            if dst1 - dst0 != src1 - src0:
                raise RestoreError(
                    f"shifted chunk {int(diff.shift_ids[i])} length mismatch"
                )
            source = self._source_buffer(
                int(diff.shift_ref_ckpts[i]), diff.ckpt_id, data, history
            )
            data[dst0:dst1] = source[src0:src1]

    def _apply_tree(
        self,
        diff: CheckpointDiff,
        spec: ChunkSpec,
        data: np.ndarray,
        history: List[np.ndarray],
    ) -> None:
        layout = self._layout_for(spec.num_chunks)
        payload = np.frombuffer(self._payload(diff), dtype=np.uint8)
        offset = 0
        for node in diff.first_ids:
            start, end = self._node_bounds(spec, layout, int(node))
            length = end - start
            if offset + length > payload.shape[0]:
                raise RestoreError("tree payload shorter than regions demand")
            data[start:end] = payload[offset : offset + length]
            offset += length
        if offset != payload.shape[0]:
            raise RestoreError(
                f"tree payload has {payload.shape[0] - offset} trailing bytes"
            )

        for i in range(diff.num_shift):
            dst0, dst1 = self._node_bounds(spec, layout, int(diff.shift_ids[i]))
            src0, src1 = self._node_bounds(spec, layout, int(diff.shift_ref_ids[i]))
            if dst1 - dst0 != src1 - src0:
                raise RestoreError(
                    f"shifted region {int(diff.shift_ids[i])} length mismatch"
                )
            source = self._source_buffer(
                int(diff.shift_ref_ckpts[i]), diff.ckpt_id, data, history
            )
            data[dst0:dst1] = source[src0:src1]

    # ------------------------------------------------------------------
    def _layout_for(self, num_chunks: int) -> TreeLayout:
        layout = self._layouts.get(num_chunks)
        if layout is None:
            layout = TreeLayout(num_chunks)
            self._layouts[num_chunks] = layout
        return layout

    @staticmethod
    def _node_bounds(spec: ChunkSpec, layout: TreeLayout, node: int):
        if not 0 <= node < layout.num_nodes:
            raise RestoreError(f"node id {node} outside tree of {layout.num_nodes}")
        return spec.range_bounds(
            int(layout.leaf_start[node]), int(layout.leaf_count[node])
        )

    @staticmethod
    def _source_buffer(
        ref_ckpt: int, current_ckpt: int, data: np.ndarray, history: List[np.ndarray]
    ) -> np.ndarray:
        if ref_ckpt == current_ckpt:
            return data
        if not 0 <= ref_ckpt < len(history):
            raise RestoreError(
                f"shifted duplicate references checkpoint {ref_ckpt}, "
                f"which is not reconstructed yet"
            )
        return history[ref_ckpt]


def restore_latest(
    diffs: Sequence[CheckpointDiff], payload_codec=None, scrub: bool = False
) -> np.ndarray:
    """Convenience wrapper: reconstruct only the final checkpoint."""
    return Restorer(payload_codec=payload_codec, scrub=scrub).restore(diffs)
