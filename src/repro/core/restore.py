"""Checkpoint reconstruction from diff chains.

Restoring checkpoint *k* follows §2.2: start from the reconstruction of
checkpoint *k-1* (fixed duplicates are simply the bytes that are never
overwritten), write the first-occurrence payload into place, then resolve
shifted duplicates by copying from the referenced checkpoint — which may
be an earlier checkpoint or checkpoint *k* itself (a shifted duplicate of
a first occurrence earlier in the same buffer).

Shifted-duplicate references always point at content that was stored as a
first occurrence, so after phase one of the current checkpoint every
reference target is available in some reconstructed buffer.  All three
apply paths are vectorized: first-occurrence payloads land via one
reshape/fancy-index scatter, and shifted duplicates are grouped by
referenced checkpoint so each source buffer is touched by one batched
gather (the read-path mirror of the serialization gathers in
:mod:`~repro.core.serialize`).

:meth:`Restorer.restore` keeps only the *reference window* in memory —
the previous checkpoint plus whatever earlier checkpoints later diffs
still point at — and drops each buffer after its last use
(``peak_buffers_held`` reports the high-water mark).
:meth:`Restorer.restore_all` returns every state and therefore holds the
whole chain by construction.  For restores that skip chain replay
entirely, see :mod:`~repro.core.provenance`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import IntegrityError, ReproError, RestoreError
from .. import telemetry
from ..telemetry import events
from .chunking import ChunkSpec
from .diff import CheckpointDiff
from .merkle import TreeLayout

_DIFFS_APPLIED = telemetry.counter(
    "restore.diffs_applied", "Diffs applied during chain-replay restores"
)
from .serialize import (
    chunk_payload_offsets,
    expand_node_chunks,
    node_region_bounds,
    unpack_bitmap,
)


def scrub_chain(diffs: Sequence[CheckpointDiff], payload_codec=None) -> None:
    """Structurally validate a chain before applying it.

    Raises a structured :class:`~repro.errors.IntegrityError` naming the
    first bad checkpoint.  With a *payload_codec*, payload-length findings
    are suppressed (compressed payloads legitimately differ from the raw
    lengths the verifier predicts).
    """
    from .analysis import verify_chain  # local import: avoids a cycle

    problems = verify_chain(diffs)
    if payload_codec is not None:
        problems = [p for p in problems if "payload" not in p]
    if problems:
        first = problems[0]
        ckpt_id: Optional[int] = None
        if first.startswith("ckpt "):
            try:
                ckpt_id = int(first.split()[1].rstrip(":"))
            except ValueError:
                ckpt_id = None
        raise IntegrityError(
            f"scrub failed: {first}"
            + (f" (+{len(problems) - 1} more)" if len(problems) > 1 else ""),
            ckpt_id=ckpt_id,
        )


def _scatter_payload(
    data: np.ndarray,
    spec: ChunkSpec,
    chunks: np.ndarray,
    offsets: np.ndarray,
    payload: np.ndarray,
) -> None:
    """Write ``payload[offsets[i]:...]`` into chunk ``chunks[i]`` for all i.

    Full-size chunks scatter through one reshape + fancy-index assignment;
    the (at most one) short tail chunk is patched scalar.  Offsets must be
    validated against the payload length by the caller.
    """
    if chunks.size == 0:
        return
    cs = spec.chunk_size
    full = spec.data_len // cs
    is_full = chunks < full
    rows = chunks[is_full]
    if rows.size:
        offs = offsets[is_full]
        body = data[: full * cs].reshape(full, cs)
        n = rows.shape[0]
        if n == 1 or bool(np.all(np.diff(offs) == cs)):
            # Contiguous payload run — the common case (ascending
            # first-occurrence chunks with no interleaved tail).
            start = int(offs[0])
            body[rows] = payload[start : start + n * cs].reshape(n, cs)
        else:
            body[rows] = payload[offs[:, None] + np.arange(cs, dtype=np.int64)]
    for i in np.nonzero(~is_full)[0]:
        start, end = spec.chunk_bounds(int(chunks[i]))
        off = int(offsets[i])
        data[start:end] = payload[off : off + (end - start)]


def _copy_chunks(
    data: np.ndarray,
    spec: ChunkSpec,
    dst_chunks: np.ndarray,
    src_chunks: np.ndarray,
    source: np.ndarray,
) -> None:
    """Batched chunk copy ``data[dst] = source[src]`` (lengths pre-checked)."""
    if dst_chunks.size == 0:
        return
    cs = spec.chunk_size
    full = spec.data_len // cs
    both_full = (dst_chunks < full) & (src_chunks < full)
    if np.any(both_full):
        body = data[: full * cs].reshape(full, cs)
        src_body = source[: full * cs].reshape(full, cs)
        body[dst_chunks[both_full]] = src_body[src_chunks[both_full]]
    for i in np.nonzero(~both_full)[0]:
        d0, d1 = spec.chunk_bounds(int(dst_chunks[i]))
        s0, s1 = spec.chunk_bounds(int(src_chunks[i]))
        data[d0:d1] = source[s0:s1]


class Restorer:
    """Reconstructs full checkpoints from an ordered diff chain.

    Parameters
    ----------
    payload_codec:
        Codec whose ``decompress`` undoes the engine-side payload
        compression (the hybrid mode of :class:`~repro.core.dedup_tree.
        TreeDedup`); ``None`` for raw payloads.
    scrub:
        When true, every diff is structurally validated before it is
        applied (frame digest where present, region bounds, payload
        lengths, reference validity), and any damage raises a structured
        :class:`~repro.errors.IntegrityError` naming the first bad
        checkpoint — instead of silently producing wrong bytes or
        surfacing an unattributed :class:`RestoreError` mid-apply.
    space:
        Optional execution space (:class:`~repro.kokkos.execution.
        ExecutionSpace`); when set, each applied diff and the final
        host-to-device upload are recorded in its ledger so the restart
        can be priced like the create path (see ``docs/COST_MODEL.md``).

    Attributes
    ----------
    peak_buffers_held:
        High-water mark of simultaneously held checkpoint buffers during
        the last :meth:`restore` / :meth:`restore_all` call.
    """

    def __init__(self, payload_codec=None, scrub: bool = False, space=None) -> None:
        self.payload_codec = payload_codec
        self.scrub = scrub
        self.space = space
        self.peak_buffers_held: int = 0
        self._layouts: Dict[int, TreeLayout] = {}

    # ------------------------------------------------------------------
    def restore_all(self, diffs: Sequence[CheckpointDiff]) -> List[np.ndarray]:
        """Reconstruct every checkpoint in the chain, in order."""
        with telemetry.span(
            "restore.replay_all", space=self.space, chain_len=len(diffs)
        ):
            if self.scrub:
                self._scrub_chain(diffs)
            history: Dict[int, np.ndarray] = {}
            for position, diff in enumerate(diffs):
                if diff.ckpt_id != position:
                    raise RestoreError(
                        f"diff chain out of order: position {position} holds "
                        f"checkpoint {diff.ckpt_id}"
                    )
                history[position] = self._restore_one_guarded(
                    diff, history, position
                )
            self.peak_buffers_held = len(history)
            if self.space is not None and history:
                self.space.transfer("H2D", int(history[len(diffs) - 1].nbytes))
        return [history[i] for i in range(len(diffs))]

    def _scrub_chain(self, diffs: Sequence[CheckpointDiff]) -> None:
        """Pre-apply validation; raises on the first bad checkpoint."""
        scrub_chain(diffs, self.payload_codec)

    def restore(
        self, diffs: Sequence[CheckpointDiff], upto: Optional[int] = None
    ) -> np.ndarray:
        """Reconstruct checkpoint *upto* (default: the last one).

        Holds only the reference window in memory: the previous
        checkpoint plus earlier checkpoints that a not-yet-applied diff's
        shifted duplicates still point at.  Buffers are dropped the
        moment no remaining diff needs them; ``peak_buffers_held``
        records how many were alive at once.
        """
        if len(diffs) == 0:
            raise RestoreError("cannot restore from an empty diff chain")
        if upto is None:
            upto = len(diffs) - 1
        if not 0 <= upto < len(diffs):
            raise RestoreError(f"checkpoint {upto} outside chain of {len(diffs)}")
        chain = diffs[: upto + 1]
        with telemetry.span(
            "restore.replay", space=self.space, upto=upto, chain_len=len(chain)
        ) as span:
            result = self._restore_windowed(chain, upto)
            span.set(peak_buffers=self.peak_buffers_held)
        events.emit(
            events.RESTORE,
            path="replay",
            target_ckpt=upto,
            chain_len=len(chain),
            state_bytes=int(result.nbytes),
            payload_bytes=sum(d.payload_bytes for d in chain),
        )
        return result

    def _restore_windowed(
        self, chain: Sequence[CheckpointDiff], upto: int
    ) -> np.ndarray:
        if self.scrub:
            self._scrub_chain(chain)

        # Last position at which each reconstructed checkpoint is read:
        # position+1 needs position (fixed duplicates), and any later
        # diff's shifted duplicates may reach further back.
        last_use: Dict[int, int] = {upto: upto}
        for position, diff in enumerate(chain):
            if diff.ckpt_id != position:
                raise RestoreError(
                    f"diff chain out of order: position {position} holds "
                    f"checkpoint {diff.ckpt_id}"
                )
            if position + 1 <= upto:
                last_use[position] = max(last_use.get(position, -1), position + 1)
            for ref in diff.referenced_checkpoints:
                t = int(ref)
                last_use[t] = max(last_use.get(t, -1), position)

        history: Dict[int, np.ndarray] = {}
        peak = 0
        for position, diff in enumerate(chain):
            history[position] = self._restore_one_guarded(diff, history, position)
            peak = max(peak, len(history))
            dead = [t for t in history if last_use.get(t, -1) <= position and t != upto]
            for t in dead:
                del history[t]
        self.peak_buffers_held = peak
        if self.space is not None:
            self.space.transfer("H2D", int(history[upto].nbytes))
        return history[upto]

    # ------------------------------------------------------------------
    def _restore_one_guarded(
        self,
        diff: CheckpointDiff,
        history: Mapping[int, np.ndarray],
        position: int,
    ) -> np.ndarray:
        """Apply one diff; under scrub, wrap apply failures as integrity."""
        if not self.scrub:
            return self._restore_one(diff, history)
        try:
            return self._restore_one(diff, history)
        except IntegrityError:
            raise
        except ReproError as exc:
            raise IntegrityError(
                f"checkpoint {position}: diff failed to apply ({exc})",
                ckpt_id=position,
            ) from exc

    def _restore_one(
        self, diff: CheckpointDiff, history: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        spec = ChunkSpec(diff.data_len, diff.chunk_size)
        if diff.ckpt_id == 0:
            data = np.zeros(diff.data_len, dtype=np.uint8)
        else:
            prev = history.get(diff.ckpt_id - 1)
            if prev is None:
                raise RestoreError(
                    f"checkpoint {diff.ckpt_id} needs checkpoint "
                    f"{diff.ckpt_id - 1}, which is not reconstructed"
                )
            if prev.shape[0] != diff.data_len:
                raise RestoreError(
                    f"checkpoint length changed mid-chain at {diff.ckpt_id}"
                )
            data = prev.copy()

        handler = {
            "full": self._apply_full,
            "basic": self._apply_basic,
            "list": self._apply_list,
            "tree": self._apply_tree,
        }[diff.method]
        handler(diff, spec, data, history)
        _DIFFS_APPLIED.inc()
        if self.space is not None:
            prev_bytes = diff.data_len if diff.ckpt_id else 0
            self.space.launch(
                f"restore.apply.{diff.method}",
                items=spec.num_chunks,
                bytes_read=diff.payload_bytes + diff.metadata_bytes + prev_bytes,
                bytes_written=diff.data_len,
            )
        return data

    def _payload(self, diff: CheckpointDiff) -> bytes:
        if self.payload_codec is not None and diff.method == "tree":
            return self.payload_codec.decompress(diff.payload)
        return diff.payload

    def _apply_shifts(
        self,
        spec: ChunkSpec,
        data: np.ndarray,
        dst_chunks: np.ndarray,
        src_chunks: np.ndarray,
        ref_ckpts: np.ndarray,
        current_ckpt: int,
        history: Mapping[int, np.ndarray],
    ) -> None:
        """Copy shifted duplicates, one batched gather per source buffer.

        Shifted references target first occurrences (of this or an earlier
        checkpoint), never bytes another shifted duplicate of the same
        diff wrote — so applying them grouped by referenced checkpoint is
        equivalent to the sequential per-entry order.
        """
        for t in np.unique(ref_ckpts):
            source = self._source_buffer(int(t), current_ckpt, data, history)
            sel = ref_ckpts == t
            _copy_chunks(data, spec, dst_chunks[sel], src_chunks[sel], source)

    # ------------------------------------------------------------------
    def _apply_full(
        self,
        diff: CheckpointDiff,
        spec: ChunkSpec,
        data: np.ndarray,
        history: Mapping[int, np.ndarray],
    ) -> None:
        payload = self._payload(diff)
        if len(payload) != diff.data_len:
            raise RestoreError(
                f"full checkpoint payload is {len(payload)} bytes, "
                f"expected {diff.data_len}"
            )
        data[:] = np.frombuffer(payload, dtype=np.uint8)

    def _apply_basic(
        self,
        diff: CheckpointDiff,
        spec: ChunkSpec,
        data: np.ndarray,
        history: Mapping[int, np.ndarray],
    ) -> None:
        changed = unpack_bitmap(diff.bitmap, spec.num_chunks)
        payload = np.frombuffer(self._payload(diff), dtype=np.uint8)
        chunks = np.nonzero(changed)[0].astype(np.int64)
        offsets, _, total = chunk_payload_offsets(spec, chunks)
        if total > payload.shape[0]:
            raise RestoreError("basic payload shorter than bitmap demands")
        if total < payload.shape[0]:
            raise RestoreError(
                f"basic payload has {payload.shape[0] - total} trailing bytes"
            )
        _scatter_payload(data, spec, chunks, offsets, payload)

    def _apply_list(
        self,
        diff: CheckpointDiff,
        spec: ChunkSpec,
        data: np.ndarray,
        history: Mapping[int, np.ndarray],
    ) -> None:
        payload = np.frombuffer(self._payload(diff), dtype=np.uint8)
        firsts = diff.first_ids.astype(np.int64)
        self._check_chunk_ids(spec, firsts)
        offsets, _, total = chunk_payload_offsets(spec, firsts)
        if total != payload.shape[0]:
            raise RestoreError("list payload length mismatch")
        _scatter_payload(data, spec, firsts, offsets, payload)

        if diff.num_shift:
            dst = diff.shift_ids.astype(np.int64)
            src = diff.shift_ref_ids.astype(np.int64)
            self._check_chunk_ids(spec, dst)
            self._check_chunk_ids(spec, src)
            _, dst_len, _ = chunk_payload_offsets(spec, dst)
            _, src_len, _ = chunk_payload_offsets(spec, src)
            bad = np.nonzero(dst_len != src_len)[0]
            if bad.size:
                raise RestoreError(
                    f"shifted chunk {int(dst[bad[0]])} length mismatch"
                )
            self._apply_shifts(
                spec, data, dst, src,
                diff.shift_ref_ckpts.astype(np.int64), diff.ckpt_id, history,
            )

    def _apply_tree(
        self,
        diff: CheckpointDiff,
        spec: ChunkSpec,
        data: np.ndarray,
        history: Mapping[int, np.ndarray],
    ) -> None:
        layout = self._layout_for(spec.num_chunks)
        payload = np.frombuffer(self._payload(diff), dtype=np.uint8)
        firsts = diff.first_ids.astype(np.int64)
        self._check_node_ids(layout, firsts)
        f0, f1 = node_region_bounds(spec, layout, firsts)
        region_lengths = f1 - f0
        total = int(region_lengths.sum())
        if total > payload.shape[0]:
            raise RestoreError("tree payload shorter than regions demand")
        if total < payload.shape[0]:
            raise RestoreError(
                f"tree payload has {payload.shape[0] - total} trailing bytes"
            )
        region_offsets = np.empty(firsts.shape[0], dtype=np.int64)
        if firsts.size:
            region_offsets[0] = 0
            np.cumsum(region_lengths[:-1], out=region_offsets[1:])
        chunks, region_of, within = expand_node_chunks(layout, firsts)
        chunk_offsets = region_offsets[region_of] + within * spec.chunk_size
        _scatter_payload(data, spec, chunks, chunk_offsets, payload)

        if diff.num_shift:
            dst_nodes = diff.shift_ids.astype(np.int64)
            src_nodes = diff.shift_ref_ids.astype(np.int64)
            self._check_node_ids(layout, dst_nodes)
            self._check_node_ids(layout, src_nodes)
            d0, d1 = node_region_bounds(spec, layout, dst_nodes)
            s0, s1 = node_region_bounds(spec, layout, src_nodes)
            bad = np.nonzero((d1 - d0) != (s1 - s0))[0]
            if bad.size:
                raise RestoreError(
                    f"shifted region {int(dst_nodes[bad[0]])} length mismatch"
                )
            # Equal byte lengths imply equal chunk counts, so the two
            # expansions pair up chunk for chunk.
            dst_chunks, dst_region, _ = expand_node_chunks(layout, dst_nodes)
            src_chunks, _, _ = expand_node_chunks(layout, src_nodes)
            refs = diff.shift_ref_ckpts.astype(np.int64)[dst_region]
            self._apply_shifts(
                spec, data, dst_chunks, src_chunks, refs, diff.ckpt_id, history
            )

    # ------------------------------------------------------------------
    def _layout_for(self, num_chunks: int) -> TreeLayout:
        layout = self._layouts.get(num_chunks)
        if layout is None:
            layout = TreeLayout(num_chunks)
            self._layouts[num_chunks] = layout
        return layout

    @staticmethod
    def _check_chunk_ids(spec: ChunkSpec, chunks: np.ndarray) -> None:
        if chunks.size and (chunks.min() < 0 or chunks.max() >= spec.num_chunks):
            bad = int(chunks.min()) if chunks.min() < 0 else int(chunks.max())
            spec.chunk_bounds(bad)  # raises ChunkingError with the bad id

    @staticmethod
    def _check_node_ids(layout: TreeLayout, nodes: np.ndarray) -> None:
        if nodes.size and (nodes.min() < 0 or nodes.max() >= layout.num_nodes):
            bad = int(nodes.min()) if nodes.min() < 0 else int(nodes.max())
            raise RestoreError(
                f"node id {bad} outside tree of {layout.num_nodes}"
            )

    @staticmethod
    def _source_buffer(
        ref_ckpt: int,
        current_ckpt: int,
        data: np.ndarray,
        history: Mapping[int, np.ndarray],
    ) -> np.ndarray:
        if ref_ckpt == current_ckpt:
            return data
        source = history.get(ref_ckpt) if ref_ckpt >= 0 else None
        if source is None:
            raise RestoreError(
                f"shifted duplicate references checkpoint {ref_ckpt}, "
                f"which is not reconstructed yet"
            )
        return source


def restore_latest(
    diffs: Sequence[CheckpointDiff], payload_codec=None, scrub: bool = False
) -> np.ndarray:
    """Convenience wrapper: reconstruct only the final checkpoint."""
    return Restorer(payload_codec=payload_codec, scrub=scrub).restore(diffs)
