"""Graphlet atlas: canonical forms, automorphism orbits, lookup tables.

ORANGES computes, per vertex, the *graphlet degree vector* (GDV): how many
times the vertex appears in each automorphism orbit of each connected
graphlet on 2–5 vertices (§3.2).  There are 30 such graphlets (1 + 2 + 6 +
21) carrying 73 orbits — which matches Table 1's GDV sizes exactly
(|V| × 73 × 4 bytes).

This module enumerates all of them programmatically: every labeled graph
on k ≤ 5 vertices is a bitmask over the C(k,2) vertex pairs; canonical
forms come from minimising over all k! relabelings; automorphism orbits
from the stabiliser permutations.  The resulting ``orbit_table[k]`` maps
*any* labeled adjacency mask directly to the global orbit id of each of
its k positions, so classifying an enumerated subgraph is a single table
lookup.

Orbit numbering: graphlets are ordered by (size, edge count, max degree,
canonical mask) and orbits within a graphlet by ascending (degree,
neighbour-degree signature).  For sizes ≤ 4 this provably reproduces the
standard Pržulj numbering (orbits 0–14: degree alone separates every orbit
and the standard order is ascending degree); for size 5 the assignment of
ids 15–72 is deterministic but may permute Pržulj's — nothing downstream
depends on which index is which, only on the partition being correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, permutations
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import GraphError

MAX_GRAPHLET_SIZE = 5
MIN_GRAPHLET_SIZE = 2

#: Pair-bit conventions per size: _PAIRS[k] lists (i, j) for bit b.
_PAIRS: Dict[int, List[Tuple[int, int]]] = {
    k: list(combinations(range(k), 2)) for k in range(2, MAX_GRAPHLET_SIZE + 1)
}
_PAIR_BIT: Dict[int, Dict[Tuple[int, int], int]] = {
    k: {pair: b for b, pair in enumerate(pairs)} for k, pairs in _PAIRS.items()
}


def pair_bit(k: int, i: int, j: int) -> int:
    """Bit index of the (i, j) pair in a size-*k* adjacency mask."""
    if i > j:
        i, j = j, i
    return _PAIR_BIT[k][(i, j)]


def _apply_perm(mask: int, k: int, perm: Tuple[int, ...]) -> int:
    """Relabel a mask's vertices by *perm* (perm[i] = new label of i)."""
    out = 0
    for b, (i, j) in enumerate(_PAIRS[k]):
        if mask >> b & 1:
            out |= 1 << pair_bit(k, perm[i], perm[j])
    return out


def _degrees(mask: int, k: int) -> List[int]:
    deg = [0] * k
    for b, (i, j) in enumerate(_PAIRS[k]):
        if mask >> b & 1:
            deg[i] += 1
            deg[j] += 1
    return deg


def _connected(mask: int, k: int) -> bool:
    adj = [[] for _ in range(k)]
    for b, (i, j) in enumerate(_PAIRS[k]):
        if mask >> b & 1:
            adj[i].append(j)
            adj[j].append(i)
    seen = {0}
    stack = [0]
    while stack:
        for w in adj[stack.pop()]:
            if w not in seen:
                seen.add(w)
                stack.append(w)
    return len(seen) == k


@dataclass(frozen=True)
class GraphletInfo:
    """One graphlet type in the atlas."""

    index: int
    size: int
    num_edges: int
    canonical_mask: int
    #: Global orbit id for each canonical vertex position.
    position_orbits: Tuple[int, ...]
    #: Number of distinct orbits this graphlet carries.
    num_orbits: int


class GraphletAtlas:
    """Complete 2..max_size graphlet/orbit tables.

    Attributes
    ----------
    graphlets:
        :class:`GraphletInfo` per graphlet, in global order.
    num_orbits:
        Total orbit count (73 for max_size=5; 15 for max_size=4).
    orbit_table:
        ``orbit_table[k][mask, position]`` → global orbit id, for every
        *connected* labeled mask; rows of disconnected masks hold -1.
    """

    def __init__(self, max_size: int = MAX_GRAPHLET_SIZE) -> None:
        if not MIN_GRAPHLET_SIZE <= max_size <= MAX_GRAPHLET_SIZE:
            raise GraphError(
                f"max_size must be {MIN_GRAPHLET_SIZE}..{MAX_GRAPHLET_SIZE}, "
                f"got {max_size}"
            )
        self.max_size = max_size
        self.graphlets: List[GraphletInfo] = []
        self.orbit_table: Dict[int, np.ndarray] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        next_orbit = 0
        for k in range(MIN_GRAPHLET_SIZE, self.max_size + 1):
            perms = list(permutations(range(k)))
            num_masks = 1 << len(_PAIRS[k])
            table = np.full((num_masks, k), -1, dtype=np.int16)

            # Group connected masks by canonical form.
            canon_of: Dict[int, int] = {}
            members: Dict[int, List[int]] = {}
            for mask in range(num_masks):
                if not _connected(mask, k):
                    continue
                canon = min(_apply_perm(mask, k, p) for p in perms)
                canon_of[mask] = canon
                members.setdefault(canon, []).append(mask)

            # Deterministic graphlet order (matches Pržulj for k ≤ 4).
            def sort_key(canon: int):
                deg = _degrees(canon, k)
                return (bin(canon).count("1"), max(deg), canon)

            for canon in sorted(members, key=sort_key):
                # Automorphism orbits of the canonical form.
                autos = [p for p in perms if _apply_perm(canon, k, p) == canon]
                parent = list(range(k))

                def find(x: int) -> int:
                    while parent[x] != x:
                        parent[x] = parent[parent[x]]
                        x = parent[x]
                    return x

                for p in autos:
                    for i in range(k):
                        ri, rj = find(i), find(p[i])
                        if ri != rj:
                            parent[ri] = rj
                classes: Dict[int, List[int]] = {}
                for i in range(k):
                    classes.setdefault(find(i), []).append(i)

                # Order orbit classes by (degree, neighbour-degree signature).
                deg = _degrees(canon, k)
                adj = [[] for _ in range(k)]
                for b, (i, j) in enumerate(_PAIRS[k]):
                    if canon >> b & 1:
                        adj[i].append(j)
                        adj[j].append(i)

                def class_key(positions: List[int]):
                    rep = positions[0]
                    neigh_sig = tuple(sorted(deg[w] for w in adj[rep]))
                    two_hop = tuple(
                        sorted(
                            tuple(sorted(deg[x] for x in adj[w])) for w in adj[rep]
                        )
                    )
                    return (deg[rep], neigh_sig, two_hop, min(positions))

                ordered = sorted(classes.values(), key=class_key)
                position_orbit = [0] * k
                class_orbit_ids = []
                for cls in ordered:
                    class_orbit_ids.append(next_orbit)
                    for pos in cls:
                        position_orbit[pos] = next_orbit
                    next_orbit += 1

                info = GraphletInfo(
                    index=len(self.graphlets),
                    size=k,
                    num_edges=bin(canon).count("1"),
                    canonical_mask=canon,
                    position_orbits=tuple(position_orbit),
                    num_orbits=len(ordered),
                )
                self.graphlets.append(info)

                # Fill the lookup rows for every labeled member mask: map
                # each labeled position through some isomorphism to the
                # canonical form, then read its orbit.
                for mask in members[canon]:
                    for p in perms:
                        if _apply_perm(mask, k, p) == canon:
                            for i in range(k):
                                table[mask, i] = position_orbit[p[i]]
                            break
            self.orbit_table[k] = table
        self.num_orbits = next_orbit

    # ------------------------------------------------------------------
    @property
    def num_graphlets(self) -> int:
        """Number of graphlet types in the atlas."""
        return len(self.graphlets)

    def classify(self, k: int, mask: int) -> np.ndarray:
        """Orbit id per labeled position of a connected size-*k* mask."""
        if k not in self.orbit_table:
            raise GraphError(f"atlas not built for size {k}")
        row = self.orbit_table[k][mask]
        if row[0] < 0:
            raise GraphError(f"mask {mask:#x} on {k} vertices is disconnected")
        return row

    def graphlet_of_mask(self, k: int, mask: int) -> GraphletInfo:
        """The graphlet type of a connected labeled mask."""
        perms = permutations(range(k))
        canon = min(_apply_perm(mask, k, p) for p in perms)
        for info in self.graphlets:
            if info.size == k and info.canonical_mask == canon:
                return info
        raise GraphError(f"mask {mask:#x} not in atlas (disconnected?)")


_ATLAS_CACHE: Dict[int, GraphletAtlas] = {}


def get_atlas(max_size: int = MAX_GRAPHLET_SIZE) -> GraphletAtlas:
    """Shared atlas instance per max_size (building size 5 takes ~1 s)."""
    atlas = _ATLAS_CACHE.get(max_size)
    if atlas is None:
        atlas = GraphletAtlas(max_size)
        _ATLAS_CACHE[max_size] = atlas
    return atlas


#: Expected orbit totals per max_size (validated in tests).
EXPECTED_ORBITS = {2: 1, 3: 4, 4: 15, 5: 73}
#: Expected graphlet totals per max_size.
EXPECTED_GRAPHLETS = {2: 1, 3: 3, 4: 9, 5: 30}
