"""ORANGES driver: graph prep + progressive GDV + checkpointing.

Ties the full paper pipeline together: generate/accept a graph, apply the
Gorder pre-processing pass (§3.2), run the progressive GDV engine, and
feed its evenly-spaced snapshots to any number of checkpointing backends
(dedup methods and/or compression codecs) so every method observes the
*identical* checkpoint stream — how the paper's comparisons are made.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..compress.checkpointing import CompressionCheckpointer
from ..core.checkpointer import IncrementalCheckpointer
from ..errors import ConfigurationError
from ..graphs.csr import Graph
from ..graphs.generators import generate
from ..graphs.gorder import gorder
from ..utils.validation import positive_int
from .gdv import GdvEngine

Backend = Union[IncrementalCheckpointer, CompressionCheckpointer]


@dataclass
class OrangesRun:
    """Results of one ORANGES execution with checkpointing."""

    graph_name: str
    num_vertices: int
    num_edges: int
    gdv_bytes: int
    num_checkpoints: int
    subgraphs_enumerated: int
    #: backend label → the backend, with its populated record/stats.
    backends: Dict[str, Backend] = field(default_factory=dict)

    def ratio(self, label: str, skip_first: bool = False) -> float:
        """De-duplication/compression ratio of one backend."""
        return self.backends[label].dedup_ratio(skip_first)

    def throughput(self, label: str, skip_first: bool = False) -> float:
        """Aggregate throughput of one backend (bytes/simulated second)."""
        return self.backends[label].aggregate_throughput(skip_first)


class OrangesApp:
    """Configurable ORANGES application instance.

    Parameters
    ----------
    graph:
        Either a graph name from
        :data:`~repro.graphs.generators.GRAPH_GENERATORS` or a prebuilt
        :class:`~repro.graphs.Graph`.
    num_vertices:
        Scale when *graph* is a name.
    apply_gorder:
        Run the Gorder pre-processing pass (paper default: yes).
    max_graphlet_size:
        4 (fast, orbits 0–14) or 5 (complete GDV).
    """

    def __init__(
        self,
        graph: Union[str, Graph],
        num_vertices: int = 4096,
        seed: Optional[int] = None,
        apply_gorder: bool = True,
        gorder_window: int = 5,
        max_graphlet_size: int = 4,
        layout: str = "vertex-major",
        counting: str = "per-vertex",
    ) -> None:
        if isinstance(graph, str):
            self.graph_name = graph
            self.graph = generate(graph, num_vertices, seed=seed)
        else:
            self.graph_name = "custom"
            self.graph = graph
        if apply_gorder:
            order = gorder(self.graph, window=gorder_window)
            self.graph = self.graph.relabel(order)
        self.max_graphlet_size = max_graphlet_size
        self.layout = layout
        self.counting = counting
        self._engine: Optional[GdvEngine] = None

    # ------------------------------------------------------------------
    @property
    def gdv_bytes(self) -> int:
        """Checkpoint size this graph produces (Table 1 column)."""
        return self.graph.num_vertices * 73 * 4

    def fresh_engine(self) -> GdvEngine:
        """A new progressive engine over the prepared graph."""
        return GdvEngine(
            self.graph,
            self.max_graphlet_size,
            layout=self.layout,
            counting=self.counting,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        backends: Dict[str, Backend],
        num_checkpoints: int = 10,
    ) -> OrangesRun:
        """Execute ORANGES, checkpointing through every backend.

        All backends must accept checkpoints of :attr:`gdv_bytes` bytes.
        """
        positive_int(num_checkpoints, "num_checkpoints")
        if not backends:
            raise ConfigurationError("run() needs at least one backend")
        engine = self.fresh_engine()
        for label, backend in backends.items():
            expected = getattr(backend, "data_len", None)
            if expected is None:
                expected = backend.engine.spec.data_len  # type: ignore[union-attr]
            if expected != self.gdv_bytes:
                raise ConfigurationError(
                    f"backend {label!r} sized for {expected} bytes, "
                    f"GDV is {self.gdv_bytes}"
                )
        for snapshot in engine.checkpoint_stream(num_checkpoints):
            for backend in backends.values():
                backend.checkpoint(snapshot)
        return OrangesRun(
            graph_name=self.graph_name,
            num_vertices=self.graph.num_vertices,
            num_edges=self.graph.num_edges,
            gdv_bytes=self.gdv_bytes,
            num_checkpoints=num_checkpoints,
            subgraphs_enumerated=engine.subgraphs_seen,
            backends=dict(backends),
        )

    def make_backend(
        self,
        method: str,
        chunk_size: int = 128,
        **kwargs,
    ) -> Backend:
        """Construct a backend sized for this app's GDV buffer.

        ``method`` is a dedup method name (``tree``/``list``/``basic``/
        ``full``) or ``"compress:<codec>"``.
        """
        if method.startswith("compress:"):
            codec = method.split(":", 1)[1]
            return CompressionCheckpointer(self.gdv_bytes, codec, **kwargs)
        return IncrementalCheckpointer(
            data_len=self.gdv_bytes, chunk_size=chunk_size, method=method, **kwargs
        )
