"""ESU enumeration of connected induced subgraphs (Wernicke, 2006).

ORANGES needs every connected induced subgraph on 2..k vertices exactly
once.  ESU guarantees that: rooted at vertex *v*, it only extends with
vertices greater than *v* whose first contact with the growing subgraph
happens through the newest member (the *exclusive neighbourhood* rule), so
each subgraph is produced at exactly one node of the recursion tree —
rooted at its minimum vertex.

That rooting is also what makes the checkpoint stream realistic: a
graphlet's counts are committed when its minimum vertex is processed, so
GDV updates sweep through the buffer in vertex order with a halo whose
width depends on the graph ordering (this is why Gorder matters, §3.2).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import GraphError
from ..graphs.csr import Graph
from ..utils.validation import positive_int
from .graphlets import MAX_GRAPHLET_SIZE


class EsuEnumerator:
    """Reusable ESU state over one graph.

    Builds the neighbour-set representation once; ``subgraphs_rooted_at``
    then streams every connected induced subgraph of size 2..max_size
    whose minimum vertex is the root, each exactly once.
    """

    def __init__(self, graph: Graph, max_size: int = 4) -> None:
        positive_int(max_size, "max_size")
        if max_size > MAX_GRAPHLET_SIZE:
            raise GraphError(
                f"max_size {max_size} exceeds atlas limit {MAX_GRAPHLET_SIZE}"
            )
        self.graph = graph
        self.max_size = max_size
        self.neighbors: List[Set[int]] = [
            set(graph.neighbors(v).tolist()) for v in range(graph.num_vertices)
        ]

    def subgraphs_rooted_at(self, root: int) -> Iterator[Tuple[int, ...]]:
        """Yield connected induced subgraphs rooted at (= minimised by)
        *root*, as vertex tuples in discovery order (``sub[0] == root``)."""
        if not 0 <= root < self.graph.num_vertices:
            raise GraphError(f"root {root} out of range")
        k = self.max_size
        neighbors = self.neighbors

        def extend(
            sub: Tuple[int, ...], ext: List[int], closed: Set[int]
        ) -> Iterator[Tuple[int, ...]]:
            # `ext` is consumed destructively: after w is taken, the
            # remaining candidates go to w's branch — the disjointness that
            # makes each subgraph unique.  `closed` is sub ∪ N(sub); only
            # vertices outside it ("exclusive neighbours" of w) may join
            # the extension set, which prevents re-reaching a vertex via a
            # different attachment point.
            while ext:
                w = ext.pop()
                grown = sub + (w,)
                yield grown
                if len(grown) < k:
                    fresh = [
                        u for u in neighbors[w] if u > root and u not in closed
                    ]
                    yield from extend(grown, ext + fresh, closed | neighbors[w])

        base = [u for u in neighbors[root] if u > root]
        closed0 = neighbors[root] | {root}
        yield from extend((root,), base, closed0)

    def subgraphs_containing(self, vertex: int) -> Iterator[Tuple[int, ...]]:
        """Yield every connected induced subgraph of size 2..max_size that
        *contains* ``vertex`` (in any position), each exactly once, as a
        tuple with ``sub[0] == vertex``.

        Same recursion as :meth:`subgraphs_rooted_at` minus the min-vertex
        filter: ESU's destructive extension set plus the exclusive-
        neighbourhood rule already guarantee uniqueness for a fixed root.
        This is the work the real ORANGES performs per vertex — every
        graphlet is enumerated once per member — and what makes GDV rows
        finalise strictly in processing order.
        """
        if not 0 <= vertex < self.graph.num_vertices:
            raise GraphError(f"vertex {vertex} out of range")
        k = self.max_size
        neighbors = self.neighbors

        def extend(
            sub: Tuple[int, ...], ext: List[int], closed: Set[int]
        ) -> Iterator[Tuple[int, ...]]:
            while ext:
                w = ext.pop()
                grown = sub + (w,)
                yield grown
                if len(grown) < k:
                    fresh = [u for u in neighbors[w] if u not in closed]
                    yield from extend(grown, ext + fresh, closed | neighbors[w])

        base = list(neighbors[vertex])
        closed0 = neighbors[vertex] | {vertex}
        yield from extend((vertex,), base, closed0)

    def count_rooted(self, root: int) -> int:
        """Number of subgraphs rooted at *root* (diagnostics)."""
        return sum(1 for _ in self.subgraphs_rooted_at(root))

    def subgraph_mask(self, sub: Tuple[int, ...]) -> int:
        """Adjacency bitmask of the induced subgraph on *sub*.

        Bit order follows :func:`repro.oranges.graphlets.pair_bit` over the
        positions of *sub* as given (not sorted).
        """
        mask = 0
        bit = 0
        neighbors = self.neighbors
        size = len(sub)
        for i in range(size):
            si = sub[i]
            for j in range(i + 1, size):
                if sub[j] in neighbors[si]:
                    mask |= 1 << bit
                bit += 1
        return mask


def enumerate_subgraphs(
    graph: Graph,
    max_size: int = 4,
    roots: Optional[Sequence[int]] = None,
) -> Iterator[Tuple[int, ...]]:
    """Stream every connected induced subgraph of size 2..max_size.

    ``roots`` restricts enumeration to subgraphs whose minimum vertex is in
    the given set (the per-batch work of the progressive engine).
    """
    esu = EsuEnumerator(graph, max_size)
    vertex_iter = range(graph.num_vertices) if roots is None else roots
    for root in vertex_iter:
        yield from esu.subgraphs_rooted_at(int(root))


def count_subgraphs_by_size(graph: Graph, max_size: int = 4) -> np.ndarray:
    """Total connected induced subgraph counts indexed by size (tests)."""
    counts = np.zeros(max_size + 1, dtype=np.int64)
    for sub in enumerate_subgraphs(graph, max_size):
        counts[len(sub)] += 1
    return counts
