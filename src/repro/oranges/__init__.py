"""ORANGES: ORbit ANd Graphlet Enumeration at Scale (the driver app, §3.2).

Computes per-vertex graphlet degree vectors over 2–5-vertex graphlets via
ESU enumeration and a programmatically-derived graphlet/orbit atlas; the
progressive engine exposes the evolving GDV buffer as the checkpoint
stream every evaluation scenario feeds on.
"""

from .app import OrangesApp, OrangesRun
from .esu import EsuEnumerator, count_subgraphs_by_size, enumerate_subgraphs
from .formulas import (
    adjacency_matrix,
    graphlet_totals_2_3,
    orbit_counts_0_to_3,
    triangles_per_vertex,
    wedge_ends_per_vertex,
)
from .gdv import GdvEngine
from .graphlets import (
    EXPECTED_GRAPHLETS,
    EXPECTED_ORBITS,
    MAX_GRAPHLET_SIZE,
    GraphletAtlas,
    GraphletInfo,
    get_atlas,
    pair_bit,
)

__all__ = [
    "OrangesApp",
    "OrangesRun",
    "EsuEnumerator",
    "count_subgraphs_by_size",
    "enumerate_subgraphs",
    "GdvEngine",
    "adjacency_matrix",
    "graphlet_totals_2_3",
    "orbit_counts_0_to_3",
    "triangles_per_vertex",
    "wedge_ends_per_vertex",
    "EXPECTED_GRAPHLETS",
    "EXPECTED_ORBITS",
    "MAX_GRAPHLET_SIZE",
    "GraphletAtlas",
    "GraphletInfo",
    "get_atlas",
    "pair_bit",
]
