"""Progressive graphlet-degree-vector engine — the checkpointed state.

The GDV buffer is the data structure ORANGES checkpoints: one row of
``num_orbits`` (73 for 5-node graphlets, 15 when capped at 4) ``uint32``
counters per vertex — Table 1's "GDV size" is exactly
``|V| × 73 × 4`` bytes.  The engine processes vertices in order; for each
root it enumerates the graphlets rooted there (ESU) and increments the
orbit counters of *every member vertex*, so each processed batch perturbs
a sliding region of the buffer plus a neighbourhood halo — the sparse
update pattern the paper's de-duplication exploits.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np

from ..errors import GraphError
from ..graphs.csr import Graph
from ..utils.validation import one_of, positive_int
from .esu import EsuEnumerator
from .graphlets import get_atlas


class GdvEngine:
    """Incremental per-vertex graphlet orbit counting.

    Parameters
    ----------
    graph:
        Input graph (typically Gorder-reordered first).
    max_graphlet_size:
        4 (orbits 0–14, fast) or 5 (all 73 orbits, slower); the paper
        computes 2–5-vertex graphlets, and notes that in sparse graphs
        most 5-vertex orbits stay zero.
    """

    def __init__(
        self,
        graph: Graph,
        max_graphlet_size: int = 4,
        layout: str = "vertex-major",
        counting: str = "per-vertex",
    ) -> None:
        positive_int(max_graphlet_size, "max_graphlet_size")
        one_of(layout, ("orbit-major", "vertex-major"), "layout")
        one_of(counting, ("per-vertex", "rooted"), "counting")
        self.graph = graph
        self.atlas = get_atlas(max_graphlet_size)
        self.max_graphlet_size = max_graphlet_size
        self.layout = layout
        #: ``per-vertex`` (the real ORANGES semantics, §3.2): processing
        #: vertex v enumerates every graphlet *containing* v and finalises
        #: v's GDV row in one step — updates sweep the buffer strictly in
        #: vertex order.  ``rooted`` commits each graphlet once, at its
        #: minimum vertex — 4× less enumeration work, but counts of
        #: not-yet-processed vertices trickle in early (a halo of partial
        #: updates ahead of the frontier).  Final GDVs are identical.
        self.counting = counting
        self.esu = EsuEnumerator(graph, max_graphlet_size)
        #: Full-width GDV buffer: 73 counters per vertex regardless of the
        #: graphlet cap, so checkpoint sizes match Table 1's layout.
        #:
        #: ``orbit-major`` (struct-of-arrays, the GPU-native layout —
        #: successive threads update successive vertices of one orbit with
        #: coalesced writes) keeps each orbit's counters contiguous, so a
        #: processed vertex batch perturbs one contiguous run per active
        #: orbit — long consolidatable regions for the Tree method.
        #: ``vertex-major`` (array-of-structs) interleaves all 73 counters
        #: per vertex; the layout ablation bench compares the two.
        self.num_orbits = 73
        if layout == "orbit-major":
            self.gdv = np.zeros((self.num_orbits, graph.num_vertices), dtype=np.uint32)
        else:
            self.gdv = np.zeros((graph.num_vertices, self.num_orbits), dtype=np.uint32)
        self.next_vertex = 0
        self.subgraphs_seen = 0
        self._orbit_tables = {
            k: self.atlas.orbit_table[k] for k in range(2, max_graphlet_size + 1)
        }

    # ------------------------------------------------------------------
    @property
    def buffer(self) -> np.ndarray:
        """The checkpointable state (a view; hash/serialize, don't hold)."""
        return self.gdv

    @property
    def buffer_nbytes(self) -> int:
        """Checkpoint size in bytes (Table 1's GDV size column)."""
        return self.gdv.nbytes

    @property
    def done(self) -> bool:
        """Whether every vertex has been processed."""
        return self.next_vertex >= self.graph.num_vertices

    # ------------------------------------------------------------------
    def process_vertex(self, root: int) -> int:
        """Enumerate all graphlets rooted at *root* and commit their orbit
        counts.  Returns the number of subgraphs enumerated."""
        tables = self._orbit_tables
        gdv = self.gdv
        orbit_major = self.layout == "orbit-major"
        mask_of = self.esu.subgraph_mask
        count = 0
        if self.counting == "per-vertex":
            # Build this vertex's whole row: every graphlet containing it,
            # classified by the vertex's own position (position 0).
            row = np.zeros(self.num_orbits, dtype=np.uint32)
            for sub in self.esu.subgraphs_containing(root):
                row[tables[len(sub)][mask_of(sub)][0]] += 1
                count += 1
            if orbit_major:
                gdv[:, root] = row
            else:
                gdv[root, :] = row
        else:
            for sub in self.esu.subgraphs_rooted_at(root):
                orbits = tables[len(sub)][mask_of(sub)]
                if orbit_major:
                    gdv[orbits, list(sub)] += 1
                else:
                    gdv[list(sub), orbits] += 1
                count += 1
        self.subgraphs_seen += count
        return count

    def process_batch(self, num_vertices: int) -> int:
        """Process the next *num_vertices* vertices in order."""
        positive_int(num_vertices, "num_vertices")
        end = min(self.next_vertex + num_vertices, self.graph.num_vertices)
        total = 0
        for v in range(self.next_vertex, end):
            total += self.process_vertex(v)
        self.next_vertex = end
        return total

    def run_to_completion(self) -> int:
        """Process every remaining vertex; returns subgraphs enumerated."""
        remaining = self.graph.num_vertices - self.next_vertex
        if remaining <= 0:
            return 0
        return self.process_batch(remaining)

    # ------------------------------------------------------------------
    def checkpoint_stream(self, num_checkpoints: int) -> Iterator[np.ndarray]:
        """Yield the GDV buffer at *num_checkpoints* evenly-spaced points.

        Matches the paper's frequency scenario (§3.2): checkpoints are
        evenly distributed across the run; the final checkpoint captures
        the completed GDV.  The yielded array is the live buffer — consume
        it (hash/compress) before advancing the iterator.
        """
        positive_int(num_checkpoints, "num_checkpoints")
        n = self.graph.num_vertices
        if self.next_vertex != 0:
            raise GraphError("checkpoint_stream requires a fresh engine")
        boundaries = np.linspace(0, n, num_checkpoints + 1).astype(np.int64)[1:]
        for boundary in boundaries:
            step = int(boundary - self.next_vertex)
            if step > 0:
                self.process_batch(step)
            yield self.gdv

    def load_state(self, buffer: np.ndarray, next_vertex: int) -> None:
        """Resume from a restored checkpoint.

        *buffer* is the byte image of the GDV at the checkpoint (what the
        checkpointing backend's ``restore`` returns) and *next_vertex* is
        the processing frontier at capture time.  Works for both counting
        schedules: the buffer holds exactly the contributions of the
        vertices processed so far, and continuing from *next_vertex* adds
        the rest — the classic checkpoint/restart contract.
        """
        if not 0 <= next_vertex <= self.graph.num_vertices:
            raise GraphError(f"next_vertex {next_vertex} out of range")
        flat = np.asarray(buffer).reshape(-1).view(np.uint8)
        if flat.shape[0] != self.gdv.nbytes:
            raise GraphError(
                f"state is {flat.shape[0]} bytes, engine expects {self.gdv.nbytes}"
            )
        self.gdv[...] = flat.view(np.uint32).reshape(self.gdv.shape)
        self.next_vertex = int(next_vertex)

    def orbit_totals(self) -> np.ndarray:
        """Sum of each orbit across vertices (sanity metric for tests:
        total orbit-0 count equals twice the edge count, etc.)."""
        axis = 1 if self.layout == "orbit-major" else 0
        return self.gdv.sum(axis=axis, dtype=np.int64)

    def gdv_of(self, vertex: int) -> np.ndarray:
        """The 73-entry orbit vector of one vertex, layout-independent."""
        if self.layout == "orbit-major":
            return self.gdv[:, vertex].copy()
        return self.gdv[vertex].copy()

    def gdv_matrix(self) -> np.ndarray:
        """The (V, 73) vertex-major view of the counts (a copy)."""
        if self.layout == "orbit-major":
            return self.gdv.T.copy()
        return self.gdv.copy()
