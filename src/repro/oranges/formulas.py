"""Closed-form orbit counting for the 2–3-vertex graphlets.

ESU enumeration is exact for every orbit but costs time proportional to
the number of graphlets.  For the orbits of graphlets on up to three
vertices there are standard closed forms over degrees and triangle
counts, all computable as vectorized sparse-matrix operations:

* orbit 0 — degree:                     ``d(v)``
* orbit 1 — end of a path P3:           ``Σ_{u∈N(v)} (d(u) − 1) − 2·t(v)``
* orbit 2 — middle of a path P3:        ``C(d(v), 2) − t(v)``
* orbit 3 — triangle membership:        ``t(v)``

where ``t(v)`` is the number of triangles containing *v*, obtained from
``(A²∘A)·1 / 2`` on the adjacency matrix.  These formulas serve as a
fast bulk path (orders of magnitude quicker than enumeration), as an
independent cross-check of the ESU engine (they share no code), and as
the foundation for degree/wedge/triangle statistics elsewhere.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..graphs.csr import Graph


def adjacency_matrix(graph: Graph) -> sparse.csr_matrix:
    """The graph's symmetric 0/1 adjacency as scipy CSR."""
    n = graph.num_vertices
    return sparse.csr_matrix(
        (
            np.ones(graph.indices.shape[0], dtype=np.int64),
            graph.indices,
            graph.indptr,
        ),
        shape=(n, n),
    )


def triangles_per_vertex(graph: Graph) -> np.ndarray:
    """t(v): triangles containing each vertex, via (A² ∘ A) row sums."""
    adj = adjacency_matrix(graph)
    paths2 = adj @ adj                     # common-neighbour counts
    closed = paths2.multiply(adj)          # keep entries that are edges
    return np.asarray(closed.sum(axis=1)).reshape(-1) // 2


def wedge_ends_per_vertex(graph: Graph) -> np.ndarray:
    """Σ_{u∈N(v)} (d(u) − 1): 2-paths starting at each vertex."""
    adj = adjacency_matrix(graph)
    degrees = graph.degree().astype(np.int64)
    return np.asarray(adj @ (degrees - 1)).reshape(-1)


def orbit_counts_0_to_3(graph: Graph) -> np.ndarray:
    """Exact per-vertex counts of orbits 0–3 as a ``(V, 4)`` int64 array."""
    degrees = graph.degree().astype(np.int64)
    triangles = triangles_per_vertex(graph)
    wedges = wedge_ends_per_vertex(graph)
    out = np.empty((graph.num_vertices, 4), dtype=np.int64)
    out[:, 0] = degrees
    out[:, 1] = wedges - 2 * triangles
    out[:, 2] = degrees * (degrees - 1) // 2 - triangles
    out[:, 3] = triangles
    return out


def graphlet_totals_2_3(graph: Graph) -> dict:
    """Whole-graph graphlet counts on 2–3 vertices (consistency checks).

    Returns ``{"edges", "paths3", "triangles"}``; each graphlet counted
    once.  Useful identities: Σ orbit0 = 2·edges, Σ orbit2 = paths3,
    Σ orbit3 = 3·triangles, Σ orbit1 = 2·paths3.
    """
    counts = orbit_counts_0_to_3(graph)
    return {
        "edges": int(counts[:, 0].sum()) // 2,
        "paths3": int(counts[:, 2].sum()),
        "triangles": int(counts[:, 3].sum()) // 3,
    }
